"""Communication metering.

Every collective executed by a :class:`~repro.simmpi.comm.SimComm` appends
one :class:`CommEvent` describing *what moved*: the operation, the step
label the algorithm was in (``"A-Broadcast"``, ``"AllToAll-Fiber"``, ...),
the communicator size, and the per-process payload bytes.  The α–β machine
model (:mod:`repro.model`) later converts events into projected times for
any machine, which is how the paper-scale figures are regenerated from
exactly-measured volumes.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class CommEvent:
    """One collective operation observed on one communicator.

    Attributes
    ----------
    step:
        Algorithm step label active when the collective ran ("" if none).
    op:
        Collective name: ``bcast`` / ``allreduce`` / ``allgather`` /
        ``gather`` / ``scatter`` / ``alltoall`` / ``alltoallv`` /
        ``send`` / ``barrier``.
    comm_size:
        Number of participating processes.
    nbytes:
        Per-process payload size: for ``bcast`` the broadcast message, for
        ``alltoall`` the *maximum* bytes any process sends, for reductions
        the contribution size.  This matches the α–β model's per-process
        bandwidth term.
    total_bytes:
        Aggregate bytes moved across the communicator (volume).
    count:
        Number of identical collectives this event represents (always 1 at
        record time; aggregation sums it).
    backend:
        Communication-backend tag (``""`` when untagged, ``"dense"`` /
        ``"sparse"`` when a :mod:`repro.comm` backend drove the transfer).
    """

    step: str
    op: str
    comm_size: int
    nbytes: int
    total_bytes: int
    count: int = 1
    backend: str = ""

    def latency_hops(self) -> int:
        """Message-startup count the α term multiplies, per the paper's
        model: tree depth ``ceil(log2(size))`` for rooted/tree collectives,
        ``size - 1`` rounds for all-to-all, one hop otherwise."""
        if self.comm_size <= 1:
            return 0
        if self.op in ("bcast", "allreduce", "allgather", "gather", "scatter", "barrier"):
            return math.ceil(math.log2(self.comm_size))
        if self.op in ("alltoall", "alltoallv"):
            return self.comm_size - 1
        return 1


class CommTracker:
    """Thread-safe accumulator of :class:`CommEvent` records.

    One tracker is shared by all ranks of an SPMD run.  To avoid counting
    the same collective once per participant, only the *completing* rank of
    each collective records it (the engine guarantees exactly one).
    """

    def __init__(self) -> None:
        self._events: list[CommEvent] = []
        self._lock = threading.Lock()

    def record(
        self,
        step: str,
        op: str,
        comm_size: int,
        nbytes: int,
        total_bytes: int | None = None,
        backend: str = "",
    ) -> None:
        if total_bytes is None:
            total_bytes = nbytes * max(comm_size - 1, 1)
        with self._lock:
            self._events.append(
                CommEvent(
                    step, op, int(comm_size), int(nbytes), int(total_bytes),
                    backend=backend,
                )
            )

    @property
    def events(self) -> list[CommEvent]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def extend(self, events) -> None:
        """Merge already-recorded events (e.g. shipped back from worker
        processes) into this tracker."""
        with self._lock:
            self._events.extend(events)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #

    def by_step(self) -> dict[str, dict[str, float]]:
        """Aggregate per step label: message count, bytes, latency hops.

        Returns ``{step: {"messages": n, "nbytes": per-process bytes summed
        over calls, "total_bytes": volume, "latency_hops": summed tree
        depths}}`` — the raw ingredients of the α–β projection.
        """
        agg: dict[str, dict[str, float]] = defaultdict(
            lambda: {"messages": 0, "nbytes": 0, "total_bytes": 0, "latency_hops": 0}
        )
        for ev in self.events:
            slot = agg[ev.step]
            slot["messages"] += ev.count
            slot["nbytes"] += ev.nbytes * ev.count
            slot["total_bytes"] += ev.total_bytes * ev.count
            slot["latency_hops"] += ev.latency_hops() * ev.count
        return dict(agg)

    def by_backend(self) -> dict[str, dict[str, float]]:
        """Aggregate per communication-backend tag.

        Returns ``{backend: {"messages": n, "nbytes": ..., "total_bytes":
        ...}}`` — the dense-vs-sparse volume comparison the ``repro.comm``
        benchmarks report.  Untagged events aggregate under ``""``.
        """
        agg: dict[str, dict[str, float]] = defaultdict(
            lambda: {"messages": 0, "nbytes": 0, "total_bytes": 0}
        )
        for ev in self.events:
            slot = agg[ev.backend]
            slot["messages"] += ev.count
            slot["nbytes"] += ev.nbytes * ev.count
            slot["total_bytes"] += ev.total_bytes * ev.count
        return dict(agg)

    def total_bytes(self, step: str | None = None, backend: str | None = None) -> int:
        """Total volume moved, optionally restricted to one step and/or
        one backend tag."""
        return int(
            sum(
                ev.total_bytes for ev in self.events
                if (step is None or ev.step == step)
                and (backend is None or ev.backend == backend)
            )
        )

    def message_count(self, step: str | None = None, backend: str | None = None) -> int:
        return sum(
            ev.count for ev in self.events
            if (step is None or ev.step == step)
            and (backend is None or ev.backend == backend)
        )

    def format_table(self, title: str = "communication by step") -> str:
        agg = self.by_step()
        lines = [title]
        if not agg:
            lines.append("  (no communication recorded)")
            return "\n".join(lines)
        width = max(len(s) or 6 for s in agg)
        lines.append(
            f"  {'step':<{width}}  {'msgs':>8}  {'per-proc bytes':>15}  {'volume bytes':>13}"
        )
        for step in sorted(agg):
            a = agg[step]
            lines.append(
                f"  {step or '(none)':<{width}}  {a['messages']:>8d}  "
                f"{a['nbytes']:>15,.0f}  {a['total_bytes']:>13,.0f}"
            )
        backends = self.by_backend()
        if any(tag for tag in backends):
            lines.append("  volume by backend:")
            for tag in sorted(backends):
                a = backends[tag]
                lines.append(
                    f"    {tag or '(untagged)':<{max(width - 2, 6)}}  "
                    f"{a['messages']:>8d}  {a['nbytes']:>15,.0f}  "
                    f"{a['total_bytes']:>13,.0f}"
                )
            dense = backends.get("dense")
            sparse = backends.get("sparse")
            if dense and sparse and dense["total_bytes"]:
                ratio = sparse["total_bytes"] / dense["total_bytes"]
                lines.append(
                    f"    sparse/dense volume ratio: {ratio:.3f}"
                )
        return "\n".join(lines)
