"""SPMD execution engine: run the same function on ``p`` simulated ranks.

Each rank runs in its own thread with its own :class:`SimComm` on the
world communicator.  NumPy releases the GIL inside its C kernels, so local
multiplies overlap; the collectives serialise through condition variables
exactly where real MPI would synchronise.

Failure semantics: if any rank raises, the world is aborted (all blocked
collectives wake and raise :class:`~repro.errors.CommError`) and the
engine raises :class:`~repro.errors.SpmdError` carrying the *original*
per-rank exceptions — cascade errors caused by the abort are filtered out
when at least one genuine failure exists.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..errors import CommError, SpmdError
from .comm import DEFAULT_TIMEOUT, SimComm, World
from .faults import FaultInjector
from .tracker import CommTracker


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    faults=None,
    checksums: bool | None = None,
    **kwargs,
) -> list:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Parameters
    ----------
    nprocs:
        Number of simulated processes.
    fn:
        The SPMD program.  Its first argument is the rank's
        :class:`SimComm`; remaining arguments are shared (by reference —
        treat them as read-only, like remotely-resident input data).
    tracker:
        Optional :class:`CommTracker` that will receive one event per
        collective.  Pass one in whenever metering is needed; without it a
        private tracker is created and discarded.
    timeout:
        Deadlock guard for collectives, in seconds.
    faults:
        Optional :class:`~repro.simmpi.faults.FaultPlan` or
        :class:`~repro.simmpi.faults.FaultInjector` to run the program
        under deterministic fault injection.
    checksums:
        Force per-message envelope checksums on/off; ``None`` enables
        them exactly when faults are injected.

    Returns
    -------
    list
        Per-rank return values of ``fn``, indexed by rank.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    injector = None
    if faults is not None:
        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
    world = World(
        nprocs, tracker=tracker, timeout=timeout,
        injector=injector, checksums=checksums,
    )
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = SimComm(world, ("world",), tuple(range(nprocs)), rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — reported via SpmdError
            with failures_lock:
                failures[rank] = exc
            world.abort()

    if nprocs == 1:
        # fast path: no threads needed for a single rank
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(rank,), name=f"simmpi-rank-{rank}")
            for rank in range(nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        genuine = {
            r: e for r, e in failures.items() if not isinstance(e, CommError)
        }
        raise SpmdError(genuine or failures)
    return results
