"""SPMD execution engine: run the same function on ``p`` simulated ranks.

Each rank runs in its own thread with its own :class:`SimComm` on the
world communicator.  NumPy releases the GIL inside its C kernels, so local
multiplies overlap; the collectives serialise through condition variables
exactly where real MPI would synchronise.

Failure semantics: if any rank raises, the world is aborted (all blocked
collectives wake and raise :class:`~repro.errors.CommError`) and the
engine raises :class:`~repro.errors.SpmdError` carrying the *original*
per-rank exceptions — cascade errors caused by the abort are filtered out
when at least one genuine failure exists.

With ``heal=`` (a :class:`~repro.resilience.heal.HealContext`) a rank
crash does **not** abort the world: the death is reported to the world's
:class:`~repro.simmpi.membership.Membership`, survivors agree on a repair
(promoting one of ``world_spares`` parked spare ranks, or respawning the
dead grid position oversubscribed onto a survivor host) and the run
continues in place.  Only unhealable failures reach :class:`SpmdError`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..errors import CommError, RankCrashError, SpmdError
from .comm import DEFAULT_TIMEOUT, SimComm, World
from .faults import FaultInjector
from .membership import Membership
from .tracker import CommTracker

#: available execution worlds: ``threads`` is the deterministic
#: reference simulator, ``processes`` the multicore performance world.
WORLDS = ("threads", "processes")


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    faults=None,
    checksums: bool | None = None,
    world_spares: int = 0,
    heal=None,
    world: str = "threads",
    transport: str = "auto",
    world_info: dict | None = None,
    **kwargs,
) -> list:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Parameters
    ----------
    nprocs:
        Number of simulated processes.
    fn:
        The SPMD program.  Its first argument is the rank's
        :class:`SimComm`; remaining arguments are shared (by reference —
        treat them as read-only, like remotely-resident input data).
    tracker:
        Optional :class:`CommTracker` that will receive one event per
        collective.  Pass one in whenever metering is needed; without it a
        private tracker is created and discarded.
    timeout:
        Deadlock guard for collectives, in seconds.
    faults:
        Optional :class:`~repro.simmpi.faults.FaultPlan` or
        :class:`~repro.simmpi.faults.FaultInjector` to run the program
        under deterministic fault injection.
    checksums:
        Force per-message envelope checksums on/off; ``None`` enables
        them exactly when faults are injected.
    world_spares:
        Number of pre-allocated spare ranks parked outside the grid,
        promotable by the heal layer (``heal`` with mode ``"spare"``).
    heal:
        Optional :class:`~repro.resilience.heal.HealContext`.  When set,
        ``fn`` must be a healing body (it registers itself with the
        world's membership so spares/respawns can run it too) and rank
        crashes are repaired online instead of aborting.
    world:
        ``"threads"`` (default) runs ranks as threads in this process —
        the deterministic reference.  ``"processes"`` runs one worker
        process per rank (:func:`repro.mp.engine.run_spmd_processes`)
        for real multicore speedup, with the same fault/heal/watchdog
        matrix: injected crashes SIGKILL the worker for real, healing
        re-enters from the checkpointed batch boundary, and products —
        healed or not — stay bit-identical to the threaded world.
    transport:
        Payload wire format for ``world="processes"`` (one of
        :data:`repro.mp.transport.TRANSPORTS`); ignored by the threaded
        world, which shares payloads by reference.
    world_info:
        Optional dict that receives world/transport statistics (shm
        bytes, naive-pickle traffic, swept segments) after the run.

    Returns
    -------
    list
        Per-rank return values of ``fn``, indexed by rank (grid
        position — under healing, a repaired position's value comes from
        whichever rank finally held it).
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if world_spares < 0:
        raise ValueError(f"world_spares must be >= 0, got {world_spares}")
    if world not in WORLDS:
        raise ValueError(f"unknown world {world!r}; expected one of {WORLDS}")
    if world == "processes":
        injector = None
        if faults is not None:
            injector = (
                faults if isinstance(faults, FaultInjector)
                else FaultInjector(faults)
            )
        from ..mp.engine import run_spmd_processes

        return run_spmd_processes(
            nprocs, fn, *args, tracker=tracker, timeout=timeout,
            checksums=checksums, transport=transport,
            world_info=world_info, faults=injector, heal=heal,
            world_spares=world_spares, **kwargs,
        )
    if isinstance(world_info, dict):
        world_info.update({"world": "threads", "transport": None})
    injector = None
    if faults is not None:
        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
    world = World(
        nprocs, tracker=tracker, timeout=timeout,
        injector=injector, checksums=checksums,
    )
    membership = None
    if heal is not None:
        membership = Membership(
            world, nprocs, heal.mode, heal, first_batch=heal.first_batch,
            max_rounds=heal.max_rounds,
        )
        membership._next_rank = nprocs + world_spares
        world.membership = membership
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()
    threads: list[threading.Thread] = []
    threads_lock = threading.Lock()

    def record_failure(position: int, exc: BaseException) -> None:
        with failures_lock:
            failures[position] = exc
        world.abort()

    def run_body(position: int, global_rank: int) -> None:
        """Run the SPMD body for one grid position (any holder)."""
        try:
            if global_rank < nprocs and global_rank == position:
                comm = SimComm(world, ("world",), tuple(range(nprocs)), position)
                results[position] = fn(comm, *args, **kwargs)
            else:
                # promoted spare / respawn: enter through the healing body
                results[position] = membership.body.run(world, position, global_rank)
        except RankCrashError as exc:
            if membership is not None:
                membership.declare_dead(global_rank, exc)
            else:
                record_failure(position, exc)
        except BaseException as exc:  # noqa: BLE001 — reported via SpmdError
            record_failure(position, exc)
        finally:
            world.mark_finished(global_rank)
            if membership is not None:
                membership.worker_done()

    def spare_runner(global_rank: int) -> None:
        decision = membership.park(global_rank)
        if decision is None:
            return  # never promoted
        run_body(decision.promoted[global_rank], global_rank)

    def spawn_respawn(global_rank: int, position: int) -> None:
        t = threading.Thread(
            target=run_body, args=(position, global_rank),
            name=f"simmpi-respawn-{global_rank}",
        )
        with threads_lock:
            threads.append(t)
        t.start()

    if membership is not None:
        membership.spawn = spawn_respawn

    if nprocs == 1 and membership is None and world_spares == 0:
        # fast path: no threads needed for a single rank
        def runner(rank: int) -> None:
            comm = SimComm(world, ("world",), tuple(range(nprocs)), rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001
                record_failure(rank, exc)

        runner(0)
    else:
        if membership is not None:
            membership.worker_started(nprocs)
        with threads_lock:
            for rank in range(nprocs):
                threads.append(threading.Thread(
                    target=run_body, args=(rank, rank),
                    name=f"simmpi-rank-{rank}",
                ))
            for spare in range(nprocs, nprocs + world_spares):
                threads.append(threading.Thread(
                    target=spare_runner, args=(spare,),
                    name=f"simmpi-spare-{spare}",
                ))
            to_start = list(threads)
        for t in to_start:
            t.start()
        if membership is not None:
            # Respawns may add threads while we join: wait for all worker
            # bodies to finish first, then release parked spares.
            membership.wait_idle()
            membership.finish()
        joined = 0
        while True:
            with threads_lock:
                batch = threads[joined:]
            if not batch:
                break
            for t in batch:
                t.join()
            joined += len(batch)

    if membership is not None:
        # Deaths the heal layer could not repair (failed agreement, crash
        # with no survivors, ...) must surface with their original cause.
        with failures_lock:
            for position, exc in membership.healed.items():
                if results[position] is None:
                    failures.setdefault(position, exc)
    if failures:
        genuine = {
            r: e for r, e in failures.items() if not isinstance(e, CommError)
        }
        raise SpmdError(genuine or failures)
    return results
