"""Deterministic fault injection for the simulated-MPI runtime.

At 262K cores the dominant non-algorithmic failure mode is the transient
fault: a dropped or corrupted message, a node dying mid-run, a rank whose
actual memory use outruns the symbolic estimate.  This module makes those
events *reproducible* so the recovery machinery (:mod:`repro.resilience`)
can be tested bit-for-bit:

* :class:`FaultSpec` — one planned fault, addressed by deterministic
  coordinates: the rank, the operation (or plan-op kind), and the n-th
  matching attempt on that rank.  Four kinds:

  - ``"transient"`` — the addressed communication attempt raises
    :class:`~repro.errors.TransientCommError` *before* touching any shared
    state, so a retry of the same call is always safe;
  - ``"corrupt"`` — the addressed message *delivery* hands the receiver a
    perturbed copy of the payload; per-message checksums
    (:func:`~repro.simmpi.serialization.payload_checksum`) catch it and the
    transport redelivers;
  - ``"crash"`` — the addressed rank raises
    :class:`~repro.errors.RankCrashError` (a hard, non-retryable death) at
    a communication attempt or at a chosen (batch, stage) plan op;
  - ``"mem-pressure"`` — the addressed rank raises
    :class:`~repro.errors.MemoryPressureError` at a chosen (batch, stage),
    modelling an under-estimated symbolic bound; the batched driver reacts
    by doubling the batch count and re-running.

* :class:`FaultPlan` — an ordered collection of specs; build explicitly,
  parse from CLI strings (:meth:`FaultPlan.parse`), or draw a seeded
  pseudo-random plan (:meth:`FaultPlan.random`) — all fully deterministic.

* :class:`FaultInjector` — the per-run engine: owns per-rank attempt
  counters (each rank is one thread, so counters are contention-free), a
  thread-safe event log, and the retry bookkeeping the recovery side
  reports as ``fault_stats``.

Determinism contract: each rank's program order is deterministic, the
counters key on ``(rank, op)``, and nothing consults wall clock or global
RNG state — the same plan against the same program injects the same
faults at the same instants, every run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import MemoryPressureError, RankCrashError, TransientCommError
from .serialization import corrupt_copy

FAULT_KINDS = ("transient", "corrupt", "crash", "mem-pressure")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``rank`` is the global rank it targets.  Communication-level kinds
    (``transient``, ``corrupt``, and ``crash`` with an ``op``) address the
    ``nth`` (1-based) attempt/delivery of communicator operation ``op``
    (``"bcast"``, ``"send"``, ``"recv"``, ``"alltoallv"``, ...) on that
    rank.  Plan-level kinds (``crash`` / ``mem-pressure`` with ``batch``)
    fire when the rank's executor reaches the given ``(batch, stage)``
    (``stage=None`` matches the batch's first matching op; ``kind_op``
    narrows to one plan-op kind such as ``"multiply"``).
    """

    kind: str
    rank: int
    op: str | None = None
    nth: int = 1
    batch: int | None = None
    stage: int | None = None
    kind_op: str | None = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in ("transient", "corrupt") and self.op is None:
            raise ValueError(f"{self.kind!r} fault needs an op= to address")
        if self.kind in ("crash", "mem-pressure"):
            if self.op is None and self.batch is None:
                raise ValueError(
                    f"{self.kind!r} fault needs op= or batch= coordinates"
                )
        if self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI grammar ``kind:key=value,key=value,...``.

        Examples: ``transient:rank=1,op=bcast,nth=3``,
        ``corrupt:rank=0,op=send,nth=2``, ``crash:rank=2,batch=1``,
        ``mem-pressure:rank=0,batch=1,stage=0``.
        """
        head, _, rest = text.strip().partition(":")
        kind = head.strip()
        fields: dict = {}
        if rest:
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                if not eq:
                    raise ValueError(f"bad fault field {item!r} in {text!r}")
                key = key.strip()
                value = value.strip()
                if key in ("rank", "nth", "batch", "stage"):
                    fields[key] = int(value)
                elif key == "op":
                    fields["op"] = value
                elif key == "kind_op":
                    fields["kind_op"] = value
                else:
                    raise ValueError(f"unknown fault field {key!r} in {text!r}")
        if "rank" not in fields:
            raise ValueError(f"fault spec {text!r} needs rank=")
        return cls(kind=kind, **fields)


@dataclass
class FaultEvent:
    """One thing the injector did or observed, in injection order."""

    kind: str        # "transient" / "corrupt" / "crash" / "mem-pressure"
                     # / "retry" / "redelivery"
    rank: int
    op: str | None = None
    step: str = ""
    batch: int | None = None
    stage: int | None = None
    attempt: int = 0
    backoff_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "rank": self.rank, "op": self.op,
            "step": self.step, "batch": self.batch, "stage": self.stage,
            "attempt": self.attempt, "backoff_s": self.backoff_s,
        }


class FaultPlan:
    """An ordered, immutable-after-construction set of :class:`FaultSpec`."""

    def __init__(self, specs=()) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(
            FaultSpec.parse(s) if isinstance(s, str) else s for s in specs
        )

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r})"

    @classmethod
    def parse(cls, texts) -> "FaultPlan":
        """Build from CLI strings (one spec each; see :meth:`FaultSpec.parse`)."""
        if isinstance(texts, str):
            texts = [texts]
        return cls(FaultSpec.parse(t) for t in texts)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        nprocs: int,
        transient: int = 0,
        corrupt: int = 0,
        crash: int = 0,
        ops=("bcast", "send", "recv", "alltoallv"),
        max_nth: int = 8,
        max_batch: int = 1,
    ) -> "FaultPlan":
        """A seeded pseudo-random plan of faults.

        Coordinates are drawn from ``numpy.random.RandomState(seed)``, so
        the plan — and therefore the whole faulty run — is a pure function
        of the seed.  Specs addressing attempts that never happen simply
        never fire; :meth:`FaultInjector.stats` reports planned vs fired.
        ``transient``/``corrupt`` draw retryable attempt/delivery faults;
        ``crash`` draws plan-level rank crashes addressed by batch
        (``0..max_batch-1``) — the chaos-test lever: under healing each
        crash must be survived in place, without it each must abort with
        a classified, checkpoint-pointing error.  The ``crash`` draws
        come last, so extending a plan with crashes never changes which
        transient/corrupt coordinates an existing seed produces.
        """
        rng = np.random.RandomState(seed)
        specs = []
        for kind, count in (("transient", transient), ("corrupt", corrupt)):
            for _ in range(count):
                specs.append(FaultSpec(
                    kind=kind,
                    rank=int(rng.randint(nprocs)),
                    op=str(ops[int(rng.randint(len(ops)))]),
                    nth=int(rng.randint(1, max_nth + 1)),
                ))
        for _ in range(crash):
            specs.append(FaultSpec(
                kind="crash",
                rank=int(rng.randint(nprocs)),
                batch=int(rng.randint(max_batch)),
            ))
        return cls(specs)


class FaultInjector:
    """Executes a :class:`FaultPlan` against one SPMD run.

    One injector per :class:`~repro.simmpi.comm.World`.  Attempt and
    delivery counters are per ``(rank, op)``; since each rank runs on its
    own thread and only touches its own counters, counting is lock-free.
    The event log is shared and lock-protected.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._lock = threading.Lock()
        self.events: list[FaultEvent] = []
        #: process-world hook: when set, a firing ``crash`` spec calls
        #: ``crash_action(spec, event)`` — which must not return — instead
        #: of raising :class:`RankCrashError`.  The worker engine installs
        #: an action that reports the event to the parent and then kills
        #: the process with ``SIGKILL``, turning the injected crash into a
        #: real OS-level death.
        self.crash_action = None
        self._tls = threading.local()
        # index the plan by addressing mode for O(1) hot-path lookups
        self._by_attempt: dict[tuple[int, str, int], FaultSpec] = {}
        self._by_delivery: dict[tuple[int, str, int], FaultSpec] = {}
        self._plan_ops: list[FaultSpec] = []
        self._fired: set[int] = set()
        for idx, spec in enumerate(self.plan):
            if spec.kind in ("transient",) or (
                spec.kind == "crash" and spec.op is not None
            ):
                self._by_attempt[(spec.rank, spec.op, spec.nth)] = spec
            elif spec.kind == "corrupt":
                self._by_delivery[(spec.rank, spec.op, spec.nth)] = spec
            else:
                self._plan_ops.append(spec)
        self._spec_ids = {id(spec): idx for idx, spec in enumerate(self.plan)}

    # ------------------------------------------------------------------ #
    # counters (per rank-thread, lock-free)
    # ------------------------------------------------------------------ #

    def _counters(self, family: str) -> dict:
        counters = getattr(self._tls, family, None)
        if counters is None:
            counters = {}
            setattr(self._tls, family, counters)
        return counters

    def _log(self, event: FaultEvent) -> None:
        with self._lock:
            self.events.append(event)

    def _mark_fired(self, spec: FaultSpec) -> None:
        with self._lock:
            self._fired.add(self._spec_ids[id(spec)])

    # ------------------------------------------------------------------ #
    # hooks (called by SimComm / executors)
    # ------------------------------------------------------------------ #

    def on_attempt(self, rank: int, op: str, step: str = "") -> None:
        """Called at the *entry* of every communicator operation, before
        any shared state is touched — so a raise here leaves the run in a
        state where simply calling the operation again is correct."""
        counters = self._counters("attempts")
        n = counters.get(op, 0) + 1
        counters[op] = n
        spec = self._by_attempt.get((rank, op, n))
        if spec is None:
            return
        self._mark_fired(spec)
        event = FaultEvent(spec.kind, rank, op=op, step=step, attempt=n)
        self._log(event)
        if spec.kind == "crash":
            if self.crash_action is not None:
                self.crash_action(spec, event)
            raise RankCrashError(
                f"injected crash: rank {rank} at {op} attempt {n}"
            )
        raise TransientCommError(
            f"injected transient fault: rank {rank}, {op} attempt {n}"
        )

    def on_delivery(self, rank: int, op: str, payload, step: str = ""):
        """Called for every enveloped message delivered to ``rank``;
        returns the payload — corrupted when a ``corrupt`` spec addresses
        this delivery.  Redelivery of the same message counts as a fresh
        delivery, so the injected corruption (addressed to one attempt)
        heals on retransmission, exactly like a real transient bit flip."""
        counters = self._counters("deliveries")
        n = counters.get(op, 0) + 1
        counters[op] = n
        spec = self._by_delivery.get((rank, op, n))
        if spec is None:
            return payload
        self._mark_fired(spec)
        self._log(FaultEvent("corrupt", rank, op=op, step=step, attempt=n))
        return corrupt_copy(payload)

    def on_plan_op(
        self, rank: int, kind: str, batch: int | None, stage: int | None,
        *, batches: int | None = None,
    ) -> None:
        """Called by the executor before each plan op; fires crash /
        mem-pressure specs addressed by ``(batch, stage)``."""
        if batch is None or not self._plan_ops:
            return
        for spec in self._plan_ops:
            if spec.rank != rank or spec.batch != batch:
                continue
            if spec.stage is not None and spec.stage != stage:
                continue
            if spec.kind_op is not None and spec.kind_op != kind:
                continue
            idx = self._spec_ids[id(spec)]
            with self._lock:
                if idx in self._fired:
                    continue
                self._fired.add(idx)
            event = FaultEvent(spec.kind, rank, batch=batch, stage=stage)
            self._log(event)
            if spec.kind == "crash":
                if self.crash_action is not None:
                    self.crash_action(spec, event)
                raise RankCrashError(
                    f"injected crash: rank {rank} at batch {batch}"
                    + (f" stage {stage}" if stage is not None else "")
                )
            raise MemoryPressureError(
                f"injected memory pressure: rank {rank} at batch {batch}"
                + (f" stage {stage}" if stage is not None else ""),
                batches=batches,
            )

    # ------------------------------------------------------------------ #
    # retry / redelivery bookkeeping (called by the recovery side)
    # ------------------------------------------------------------------ #

    def record_retry(
        self, rank: int, op: str, step: str, attempt: int, backoff_s: float,
        kind: str = "retry",
    ) -> None:
        self._log(FaultEvent(
            kind, rank, op=op, step=step, attempt=attempt, backoff_s=backoff_s
        ))

    # ------------------------------------------------------------------ #
    # process-world merge (fork-inherited copies report back)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> tuple[list[FaultEvent], list[int]]:
        """This injector's events and fired spec indices, for shipping a
        forked worker's fault activity back to the parent's injector."""
        with self._lock:
            return list(self.events), sorted(self._fired)

    def absorb(self, events, fired) -> None:
        """Merge a worker injector's :meth:`snapshot` into this one.

        Under ``world="processes"`` every worker runs a fork-inherited
        copy of the plan injector; the per-``(rank, op)`` counters stay
        per-rank by construction (one process per rank), and the parent
        absorbs each copy's event log and fired-spec set so
        :meth:`stats` reports the whole run.
        """
        with self._lock:
            self.events.extend(events)
            self._fired.update(int(i) for i in fired)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Aggregate view surfaced as ``SummaResult.fault_stats``."""
        with self._lock:
            events = list(self.events)
            fired = len(self._fired)
        injected: dict[str, int] = {}
        retries = 0
        backoff = 0.0
        for ev in events:
            if ev.kind in FAULT_KINDS:
                injected[ev.kind] = injected.get(ev.kind, 0) + 1
            else:
                retries += 1
                backoff += ev.backoff_s
        return {
            "planned": len(self.plan),
            "fired": fired,
            "injected": injected,
            "retries": retries,
            "simulated_backoff_s": backoff,
            "events": [ev.as_dict() for ev in events],
        }
