"""Payload size accounting and integrity checksums for the simulated-MPI layer.

The communication metering needs the wire size of whatever the algorithms
send.  Sizes follow the paper's convention of ``r = 24`` bytes per sparse
nonzero (two 8-byte indices + one 8-byte value, Sec. IV-A); raw NumPy
arrays count their buffer size; Python scalars count 8 bytes (one word on
the wire); containers sum their elements.

This module also owns per-message integrity: :func:`payload_checksum`
computes a deterministic CRC32 over a payload's content, and
:class:`Envelope` pairs a payload with its checksum for transit.  When a
:class:`~repro.simmpi.comm.World` runs with checksums enabled, every
broadcast / point-to-point / all-to-all message travels enveloped and is
verified on receipt; a mismatch (injected corruption) triggers a metered
redelivery instead of silently propagating garbage.  An envelope's wire
size is its payload plus one 8-byte checksum word — metadata only, never
proportional to the payload.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..sparse.matrix import BYTES_PER_NONZERO, SparseMatrix

#: wire size of a Python scalar (int/float/bool) — one 8-byte word.
SCALAR_NBYTES = 8

#: wire size of a per-message checksum (one 8-byte word).
CHECKSUM_NBYTES = 8


def payload_nbytes(obj) -> int:
    """Wire size in bytes of a payload passed through a collective."""
    if obj is None:
        return 0
    if isinstance(obj, Envelope):
        return payload_nbytes(obj.payload) + CHECKSUM_NBYTES
    if isinstance(obj, SparseMatrix):
        # r bytes per nonzero, the paper's accounting (Sec. IV-A).  No
        # indptr term: hypersparse tiles go over the wire in an
        # nnz-proportional format (CombBLAS uses DCSC / coordinate tuples
        # for exactly this reason), so a dense column-pointer array never
        # needs to be transmitted.
        return obj.nnz * BYTES_PER_NONZERO
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating, np.bool_)):
        return SCALAR_NBYTES
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in obj)
    # objects exposing nbytes (array-likes)
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


# --------------------------------------------------------------------- #
# per-message integrity
# --------------------------------------------------------------------- #


class Envelope:
    """A payload in transit together with its content checksum.

    Built by the sender (:func:`wrap_payload`), verified by each receiver
    (:func:`repro.simmpi.comm.SimComm` unwraps and compares checksums).
    Envelopes never nest.
    """

    __slots__ = ("payload", "crc")

    def __init__(self, payload, crc: int) -> None:
        self.payload = payload
        self.crc = int(crc)

    def __repr__(self) -> str:
        return f"Envelope(crc={self.crc:#010x}, payload={type(self.payload).__name__})"


def wrap_payload(obj) -> Envelope:
    """Envelope ``obj`` with its checksum for transit."""
    if isinstance(obj, Envelope):
        return obj
    return Envelope(obj, payload_checksum(obj))


def payload_checksum(obj) -> int:
    """Deterministic CRC32 over a payload's content.

    Covers the structural arrays of sparse tiles, the raw buffers of
    ndarrays, and recurses through the container types
    :func:`payload_nbytes` accepts.  Cheap (one pass over the bytes) and
    stable across processes and runs — the per-message integrity check of
    the resilience layer.
    """
    return _crc(obj, 0)


def _crc_bytes(data: bytes, crc: int) -> int:
    return zlib.crc32(data, crc)


def _crc_array(arr: np.ndarray, crc: int) -> int:
    crc = _crc_bytes(str(arr.dtype).encode(), crc)
    crc = _crc_bytes(struct.pack("<%dq" % len(arr.shape), *arr.shape), crc)
    return _crc_bytes(np.ascontiguousarray(arr).tobytes(), crc)


def _crc(obj, crc: int) -> int:
    if obj is None:
        return _crc_bytes(b"N", crc)
    if isinstance(obj, SparseMatrix):
        crc = _crc_bytes(struct.pack("<qq", obj.nrows, obj.ncols), crc)
        crc = _crc_array(obj.indptr, crc)
        crc = _crc_array(obj.rowidx, crc)
        return _crc_array(obj.values, crc)
    if isinstance(obj, np.ndarray):
        return _crc_array(obj, crc)
    if isinstance(obj, (bool, np.bool_)):
        return _crc_bytes(b"T" if obj else b"F", crc)
    if isinstance(obj, (int, np.integer)):
        return _crc_bytes(b"i" + str(int(obj)).encode(), crc)
    if isinstance(obj, (float, np.floating)):
        return _crc_bytes(b"f" + struct.pack("<d", float(obj)), crc)
    if isinstance(obj, (bytes, bytearray)):
        return _crc_bytes(bytes(obj), crc)
    if isinstance(obj, str):
        return _crc_bytes(b"s" + obj.encode("utf-8"), crc)
    if isinstance(obj, dict):
        for k, v in obj.items():
            crc = _crc(k, crc)
            crc = _crc(v, crc)
        return crc
    if isinstance(obj, (list, tuple)):
        crc = _crc_bytes(b"l", crc)
        for x in obj:
            crc = _crc(x, crc)
        return crc
    if isinstance(obj, (set, frozenset)):
        # order-independent: XOR of element checksums
        acc = 0
        for x in obj:
            acc ^= _crc(x, 0)
        return _crc_bytes(struct.pack("<I", acc & 0xFFFFFFFF), crc)
    # fall back to the byte size — weak, but keeps unknown array-likes usable
    return _crc_bytes(str(payload_nbytes(obj)).encode(), crc)


def corrupt_copy(obj):
    """A minimally-perturbed copy of ``obj`` whose checksum differs —
    what the fault injector delivers to simulate in-flight corruption.
    The original object is never touched (peers share it by reference)."""
    if isinstance(obj, SparseMatrix) and obj.nnz > 0:
        values = obj.values.copy()
        values[0] += 1.0
        return SparseMatrix(
            obj.nrows, obj.ncols, obj.indptr, obj.rowidx, values,
            sorted_within_columns=obj.sorted_within_columns, validate=False,
        )
    if isinstance(obj, np.ndarray) and obj.size > 0:
        flipped = obj.copy()
        flat = flipped.reshape(-1)
        flat[0] = flat[0] + 1 if flipped.dtype.kind in "iuf" else flat[0]
        return flipped
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return obj + 1
    if isinstance(obj, (bytes, bytearray)) and len(obj) > 0:
        mutated = bytearray(obj)
        mutated[0] ^= 0xFF
        return bytes(mutated)
    if isinstance(obj, str):
        return obj + "\x00"
    if isinstance(obj, (list, tuple)) and obj:
        seq = list(obj)
        seq[0] = corrupt_copy(seq[0])
        return type(obj)(seq) if isinstance(obj, tuple) else seq
    return _Garbled(obj)


class _Garbled:
    """Opaque corruption stand-in for payloads with no natural bit-flip
    (None, empty containers).  Its checksum always differs from the
    original's, so verification still catches it."""

    __slots__ = ("original",)

    def __init__(self, original) -> None:
        self.original = original

    @property
    def nbytes(self) -> int:
        return payload_nbytes(self.original)
