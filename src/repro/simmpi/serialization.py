"""Payload size accounting for the simulated-MPI layer.

The communication metering needs the wire size of whatever the algorithms
send.  Sizes follow the paper's convention of ``r = 24`` bytes per sparse
nonzero (two 8-byte indices + one 8-byte value, Sec. IV-A); raw NumPy
arrays count their buffer size; Python scalars count 8 bytes (one word on
the wire); containers sum their elements.
"""

from __future__ import annotations

import numpy as np

from ..sparse.matrix import BYTES_PER_NONZERO, SparseMatrix

#: wire size of a Python scalar (int/float/bool) — one 8-byte word.
SCALAR_NBYTES = 8


def payload_nbytes(obj) -> int:
    """Wire size in bytes of a payload passed through a collective."""
    if obj is None:
        return 0
    if isinstance(obj, SparseMatrix):
        # r bytes per nonzero, the paper's accounting (Sec. IV-A).  No
        # indptr term: hypersparse tiles go over the wire in an
        # nnz-proportional format (CombBLAS uses DCSC / coordinate tuples
        # for exactly this reason), so a dense column-pointer array never
        # needs to be transmitted.
        return obj.nnz * BYTES_PER_NONZERO
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating, np.bool_)):
        return SCALAR_NBYTES
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in obj)
    # objects exposing nbytes (array-likes)
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")
