"""Simulated MPI runtime.

The paper runs on a Cray XC40 with up to 262,144 cores; this environment
has neither MPI nor that machine.  Per the reproduction's substitution
rule, :mod:`repro.simmpi` provides a deterministic in-process SPMD runtime
with mpi4py-like semantics:

* :func:`run_spmd` launches ``p`` ranks as threads, each executing the same
  function with its own :class:`SimComm`;
* :class:`SimComm` supports ``barrier`` / ``bcast`` / ``allreduce`` /
  ``allgather`` / ``gather`` / ``scatter`` / ``alltoall`` / ``alltoallv``
  / ``split`` with MPI collective semantics, plus tag-matched
  ``send``/``recv``/``isend``/``irecv`` point-to-point;
* every collective is **metered**: a :class:`CommTracker` records payload
  bytes, message counts and communicator sizes per named algorithm step,
  which the α–β machine model turns into projected times at paper scale.

All data movement is real (payloads actually flow between ranks), so
algorithm correctness and communication *volumes* are exact; only
wall-clock speed differs from real MPI.

For resilience testing the runtime also carries a deterministic fault
layer (:mod:`repro.simmpi.faults`): a seeded :class:`FaultPlan` drives a
:class:`FaultInjector` hooked into every communicator operation, and
per-message checksums (:mod:`repro.simmpi.serialization`) catch injected
in-flight corruption.  Every blocking rendezvous is supervised by a hang
watchdog (wait-for graph in :class:`~repro.simmpi.comm.World`), and the
ULFM-style membership layer (:mod:`repro.simmpi.membership`) lets
``run_spmd(..., heal=...)`` repair rank crashes online.
"""

from .comm import SimComm
from .engine import run_spmd
from .faults import FaultEvent, FaultInjector, FaultPlan, FaultSpec
from .membership import HealDecision, Membership
from .serialization import payload_checksum, payload_nbytes
from .tracker import CommEvent, CommTracker

__all__ = [
    "SimComm",
    "run_spmd",
    "Membership",
    "HealDecision",
    "payload_nbytes",
    "payload_checksum",
    "CommTracker",
    "CommEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FaultEvent",
]
