"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure domain (shape mismatches,
grid construction, memory budget exhaustion, simulated-MPI faults, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """Operand dimensions are incompatible (e.g. ``A @ B`` with
    ``A.ncols != B.nrows``, or concatenating matrices of differing heights)."""


class FormatError(ReproError, ValueError):
    """A sparse container violates its structural invariants (non-monotone
    ``indptr``, out-of-range row indices, mismatched array lengths, ...)."""


class GridError(ReproError, ValueError):
    """A process grid cannot be formed (``p`` not divisible into an
    ``sqrt(p/l) x sqrt(p/l) x l`` grid, rank out of range, ...)."""


class DistributionError(ReproError, ValueError):
    """A matrix cannot be distributed or collected on the given grid
    (tile shape mismatch, wrong communicator, inconsistent batch count)."""


class MemoryBudgetError(ReproError, RuntimeError):
    """The symbolic step determined that the multiplication cannot fit:
    the inputs alone exceed the aggregate memory budget, so no number of
    batches can make the computation feasible (paper Sec. II-B requires
    ``M > nnz(A) + nnz(B)``)."""


class CommError(ReproError, RuntimeError):
    """A simulated-MPI collective was used incorrectly (mismatched
    participation, invalid root, communicator misuse)."""


class SpmdError(ReproError, RuntimeError):
    """One or more ranks of an SPMD region raised; carries the per-rank
    exceptions so the caller can inspect every failure, not just the first."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} rank(s) failed: {detail}")


class PlannerError(ReproError, ValueError):
    """The layer/batch planner was given an infeasible configuration."""


class ExecPlanError(ReproError, ValueError):
    """A compiled execution plan is malformed (opids out of order, a
    dependency pointing at a later op, an unknown overlap mode)."""
