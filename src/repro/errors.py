"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure domain (shape mismatches,
grid construction, memory budget exhaustion, simulated-MPI faults, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library.

    Every instance carries a ``context`` dict — uniform, machine-readable
    failure coordinates (``rank``, ``op``, ``peer``, ``tag``, ...) that
    raise sites attach via :meth:`with_context`.  The CLI's friendly
    error path prints it; tests assert on it instead of parsing messages.
    """

    def __init__(self, *args):
        super().__init__(*args)
        self.context: dict = {}

    def with_context(self, **fields) -> "ReproError":
        """Attach failure coordinates; returns ``self`` for raise chaining."""
        self.context.update(fields)
        return self


class ShapeError(ReproError, ValueError):
    """Operand dimensions are incompatible (e.g. ``A @ B`` with
    ``A.ncols != B.nrows``, or concatenating matrices of differing heights)."""


class FormatError(ReproError, ValueError):
    """A sparse container violates its structural invariants (non-monotone
    ``indptr``, out-of-range row indices, mismatched array lengths, ...)."""


class GridError(ReproError, ValueError):
    """A process grid cannot be formed (``p`` not divisible into an
    ``sqrt(p/l) x sqrt(p/l) x l`` grid, rank out of range, ...)."""


class DistributionError(ReproError, ValueError):
    """A matrix cannot be distributed or collected on the given grid
    (tile shape mismatch, wrong communicator, inconsistent batch count)."""


class MemoryBudgetError(ReproError, RuntimeError):
    """The symbolic step determined that the multiplication cannot fit:
    the inputs alone exceed the aggregate memory budget, so no number of
    batches can make the computation feasible (paper Sec. II-B requires
    ``M > nnz(A) + nnz(B)``)."""


class CommError(ReproError, RuntimeError):
    """A simulated-MPI collective was used incorrectly (mismatched
    participation, invalid root, communicator misuse)."""


class TransientCommError(ReproError, RuntimeError):
    """An injected transient communication fault: the attempt failed but
    retrying the same operation is expected to succeed.  Deliberately *not*
    a :class:`CommError` subclass — the engine filters ``CommError`` as
    abort cascade, while an unretried transient fault is a genuine failure
    that must keep its rank attribution."""


class RankRevokedError(CommError):
    """The communicator's epoch was revoked by an online heal: a member
    died and the surviving set agreed to rebuild.  Raised at operation
    entry and inside rendezvous waits on every stale-epoch communicator;
    the healing wrapper (:mod:`repro.resilience.heal`) catches it, joins
    the agreement for the new epoch and re-enters the run.  A
    :class:`CommError` subclass so that, should it ever leak past a
    non-healing caller, the engine files it with the abort cascade."""


class HangError(ReproError, RuntimeError):
    """The simulated-MPI watchdog fired.

    ``kind`` classifies the hang:

    * ``"deadlock"`` — the wait-for graph of blocked ranks contains a
      cycle that persisted across two watchdog sweeps with no progress —
      a genuine cyclic deadlock, reported long before the flat timeout;
    * ``"peer-exited"`` — a blocked rank waits on a peer whose thread
      already returned and can never arrive;
    * ``"timeout"`` — the hard wall-clock backstop expired without a
      diagnosable cycle (e.g. a peer stuck outside any communicator).

    ``cycle`` names the global ranks forming the cycle (empty for
    non-cyclic kinds) and ``dump`` maps each involved rank to its wait
    record: op, communicator, peer set, tag, attempt counters, seconds
    blocked.  Deliberately *not* a :class:`CommError` — a hang is a
    genuine failure that must keep rank attribution, not be filtered as
    an abort cascade."""

    def __init__(self, message: str, *, kind: str = "timeout",
                 cycle=(), dump: dict | None = None):
        super().__init__(message)
        self.kind = kind
        self.cycle = tuple(cycle)
        self.dump = dict(dump or {})
        self.with_context(kind=kind, cycle=list(self.cycle))


class HealError(ReproError, RuntimeError):
    """Online recovery could not repair the run: no spare or host was
    available for a dead grid coordinate, the agreement protocol timed
    out, or the heal-round budget was exhausted.  The run falls back to
    the PR 3 path — abort with a checkpoint pointer."""


class CorruptPayloadError(ReproError, RuntimeError):
    """A received payload failed its per-message checksum even after the
    transport's bounded redelivery attempts — either persistent injected
    corruption or a checksum/plan bug."""


class MemoryPressureError(ReproError, RuntimeError):
    """A rank hit memory pressure mid-batch (the symbolic estimate of
    Alg. 3 is an estimate, not a guarantee).  Retryable at the driver
    level: :func:`repro.summa.batched_summa3d` reacts by doubling the
    batch count — the paper's own memory lever — and re-running."""

    def __init__(self, message: str, *, batches: int | None = None):
        super().__init__(message)
        self.batches = batches


class MemoryBudgetExceededError(MemoryPressureError):
    """Real (measured) budget overrun: the :class:`~repro.mem.MemoryLedger`
    found the per-rank high-water mark above the enforced budget at a
    stage boundary under ``enforce="strict"``.  Deterministic — the
    high-water mark is a pure function of the program, so the same run
    raises at the same (batch, stage) every time.  A
    :class:`MemoryPressureError` subclass so the batched driver's
    graceful-degradation path (double the batch count and re-run) treats
    it exactly like injected memory pressure."""


class ReplanSignal(ReproError, RuntimeError):
    """A mid-run replanning decision, raised *collectively* by every rank
    at the same batch boundary (the :class:`~repro.plan.Replanner` agrees
    on max-allreduced measurements first, so the pure decision is
    identical everywhere).  Not a failure: the driver catches it, amends
    the plan (``amended`` maps spec fields to new values — ``batches``
    and/or ``comm_backend``) and re-enters through the PR 3 re-batch
    path.  ``batches`` carries the batch count the run was executing
    under, so the driver can amend even when it delegated the choice to
    the in-band symbolic pass.  All keywords default to ``None``/empty so
    the default ``BaseException.__reduce__`` pickles instances across the
    process world."""

    def __init__(self, message: str, *, batch: int | None = None,
                 batches: int | None = None, amended: dict | None = None,
                 reason: str | None = None,
                 measurements: dict | None = None):
        super().__init__(message)
        self.batch = batch
        self.batches = batches
        self.amended = dict(amended or {})
        self.reason = reason
        self.measurements = dict(measurements or {})
        self.with_context(batch=batch, reason=reason)


class RankCrashError(ReproError, RuntimeError):
    """An injected hard crash of one rank (fault-injection stand-in for a
    node failure).  Not retryable; surfaces through :class:`SpmdError`
    with rank attribution, pointing at the checkpoint when one exists."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint directory is unusable (corrupt manifest, missing batch
    file, or a manifest that belongs to a different multiplication)."""


class SpmdError(ReproError, RuntimeError):
    """One or more ranks of an SPMD region raised; carries the per-rank
    exceptions so the caller can inspect every failure, not just the first.

    ``checkpoint_dir`` is set when the failed run was checkpointing: the
    completed batches survive there and ``resume=True`` continues from
    them instead of batch 0.
    """

    def __init__(
        self,
        failures: dict[int, BaseException],
        checkpoint_dir: str | None = None,
    ):
        self.failures = dict(failures)
        self.checkpoint_dir = checkpoint_dir
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(self.failures.items())
        )
        message = f"{len(self.failures)} rank(s) failed: {detail}"
        if checkpoint_dir is not None:
            message += (
                f" [checkpoint with completed batches at {checkpoint_dir!r}; "
                "rerun with resume=True to continue]"
            )
        super().__init__(message)


class PlannerError(ReproError, ValueError):
    """The layer/batch planner was given an infeasible configuration."""


class ServeError(ReproError, RuntimeError):
    """Base class for the :mod:`repro.serve` job-service failure domain.

    Everything the service raises at a client is a ``ServeError`` (or a
    pre-existing :class:`ReproError` passed through from execution), so a
    tenant can catch the whole serving taxonomy in one clause while the
    per-class ``context`` dict keeps rejections machine-classifiable.
    """


class AdmissionRejected(ServeError):
    """The admission controller refused a job *before* it entered the
    system — the classified alternative to queue collapse.

    ``reason`` is one of :data:`~repro.serve.admission.REJECT_REASONS`:

    * ``"queue-full"`` — the tenant's bounded queue is at capacity
      (per-tenant backpressure);
    * ``"overload"`` — the whole service's predicted backlog exceeds its
      shed limit (load shedding, so accepted-job latency stays bounded);
    * ``"deadline"`` — predicted queue wait + predicted makespan already
      exceed the job's deadline: it would be admitted only to expire;
    * ``"tenant-budget"`` — the job's predicted memory would push the
      tenant's in-flight ledger over its ``repro.mem`` budget;
    * ``"memory"`` — no (layers, batches) configuration fits the job in
      the grid's memory budget (the Alg. 3 feasibility test fails);
    * ``"unsupported"`` — the job kind/kernel combination is not served;
    * ``"shutdown"`` — the service is draining and accepts nothing new.

    The same coordinates ride ``err.context`` (``reason``, ``tenant``,
    ``job``, plus reason-specific fields), the uniform surface the CLI
    prints and tests assert on.
    """

    def __init__(self, message: str, *, reason: str, tenant=None, job=None):
        super().__init__(message)
        self.reason = str(reason)
        self.with_context(reason=self.reason, tenant=tenant, job=job)


class DeadlineExceededError(ServeError):
    """A job's deadline expired.  ``phase`` records where: ``"queued"``
    (the deadline passed before a grid picked the job up) or
    ``"running"`` (the watchdog's wait-record plumbing — the job's
    remaining deadline is installed as the execution world's blocking-op
    timeout, so an overrunning run surfaces as a classified
    :class:`HangError` that the service converts to this)."""

    def __init__(self, message: str, *, phase: str = "queued",
                 tenant=None, job=None, deadline_s=None):
        super().__init__(message)
        self.phase = str(phase)
        self.with_context(phase=self.phase, tenant=tenant, job=job,
                          deadline_s=deadline_s)


class JobCancelledError(ServeError):
    """The job was cancelled by its submitter while still queued (running
    jobs complete — SPMD regions are not preemptible)."""


class ExecPlanError(ReproError, ValueError):
    """A compiled execution plan is malformed (opids out of order, a
    dependency pointing at a later op, an unknown overlap mode)."""
