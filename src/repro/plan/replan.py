"""Mid-run replanning at batch boundaries (ROADMAP item 4, first cut).

BatchedSUMMA3D's batch loop gives the run natural decision points: after
each batch every rank holds fresh *measured* evidence — per-step
:class:`~repro.summa.trace.Tracer` spans and the
:class:`~repro.mem.MemoryLedger`'s per-batch peak — against which the
plan that chose ``b`` and the comm backend can be re-examined.  The
:class:`Replanner` runs as a compiled ``replan-check`` op at the end of
every non-final batch:

1. each rank folds its own batch's spans into three scalars — the
   per-batch *fixed* cost (A-Broadcast + Comm-Plan, paid once per batch
   regardless of ``b``), the per-batch *scaled* cost (everything
   proportional to the batch's share of columns: B-Broadcast, multiply,
   merges, fiber exchange, postprocess) and the communication subtotal —
   plus the ledger's batch peak;
2. the scalars are max-allreduced, so **every rank sees identical
   numbers** and the pure decision function below returns the identical
   verdict everywhere — the SPMD contract that lets all ranks raise the
   :class:`~repro.errors.ReplanSignal` together (or none at all);
3. the driver catches the collective signal and re-enters the existing
   re-batch path (PR 3) with the amended plan.

The amendments mirror the paper's own levers: *shrink* ``b`` when the
measured fixed cost dominates (column batching re-broadcasts A once per
batch — fewer batches pay it fewer times), *grow* ``b`` when the
measured per-batch peak exceeds the budget before strict enforcement
would trip, and *flip* the dense↔sparse backend when the fitted α–β
model — calibrated by the measured/modelled ratio of the current
backend — prices the other one under the hysteresis threshold.

Replanning **never changes the product**: an amendment that changes the
batch count restarts from batch 0 (the block-cyclic column geometry is a
function of ``b``), and a backend flip moves identical values — either
way the run is bit-identical to a fixed-plan run of the final
configuration, which the plan tests pin.

Hysteresis keeps a noisy-but-stable run from thrashing: a minimum number
of observed batches, a relative predicted-gain threshold, an absolute
gain floor, and a hard ``max_replans`` bound (which also guarantees
termination).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReplanSignal
from ..summa.trace import (
    STEP_A_BCAST,
    STEP_ALLTOALL_FIBER,
    STEP_B_BCAST,
    STEP_COMM_PLAN,
    STEP_LOCAL_MULTIPLY,
    STEP_MERGE_FIBER,
    STEP_MERGE_LAYER,
    STEP_POSTPROCESS,
)

#: steps whose per-batch cost is invariant in ``b`` (paid once per batch:
#: the full A tile is re-broadcast and the sparse backend re-plans).
_FIXED_STEPS = (STEP_A_BCAST, STEP_COMM_PLAN)
#: steps whose per-batch cost is proportional to the batch's column share.
_SCALED_STEPS = (
    STEP_B_BCAST, STEP_LOCAL_MULTIPLY, STEP_MERGE_LAYER,
    STEP_ALLTOALL_FIBER, STEP_MERGE_FIBER, STEP_POSTPROCESS,
)
#: the communication subset (both fixed and scaled) — the backend flip's
#: calibration basis.
_COMM_STEPS = (
    STEP_A_BCAST, STEP_B_BCAST, STEP_COMM_PLAN, STEP_ALLTOALL_FIBER,
)


@dataclass(frozen=True)
class ReplanPolicy:
    """The picklable decision configuration shipped to every rank.

    Frozen and value-only so the process world can send it to workers;
    the driver re-issues it with ``revision`` bumped after each adopted
    amendment.  ``modelled_comm`` carries the driver's α–β per-batch
    communication estimate for both backends (``(("dense", s),
    ("sparse", s))``) — the backend flip compares their *ratio*, scaled
    by the measured time of the current backend, so the model only has
    to rank the backends, not predict wall seconds.
    """

    threshold: float = 0.15
    min_batches: int = 1
    max_replans: int = 1
    min_gain_s: float = 1e-4
    safety: float = 0.8
    allow_shrink: bool = True
    allow_grow: bool = True
    allow_backend_flip: bool = True
    revision: int = 0
    resumable: bool = False
    modelled_comm: tuple = ()
    force: tuple = ()


def decide_replan(
    policy: ReplanPolicy,
    *,
    batches: int,
    batch: int,
    backend: str,
    t_fixed: float,
    t_scaled: float,
    t_comm: float,
    peak: float,
    fixed_mem: float,
    budget: float | None,
    max_batches: int,
) -> tuple[dict, str] | None:
    """The pure amendment decision — identical inputs on every rank give
    the identical verdict, which is what makes the collective raise safe.

    Returns ``({field: value}, reason)`` or ``None`` (stay the course).
    All ``t_*`` are this batch's max-over-ranks seconds; ``peak`` /
    ``fixed_mem`` the max-over-ranks per-batch ledger peak and the
    operand-resident share of it; ``budget`` the per-rank byte budget.

    Cost algebra (per batch, under the current count ``b``): a batch
    costs ``t_fixed + t_scaled`` where ``t_fixed`` is invariant in ``b``
    and ``t_scaled`` scales as ``1/b`` — so a full run at ``b'`` batches
    is predicted at ``b' * t_fixed + b * t_scaled`` (work conserved),
    while finishing the remaining ``rem`` batches as planned costs
    ``rem * (t_fixed + t_scaled)``.
    """
    rem = batches - (batch + 1)
    if rem <= 0 or policy.revision >= policy.max_replans:
        return None
    t_batch = t_fixed + t_scaled
    if t_batch <= 0.0:
        return None

    def better(t_switch: float, t_keep: float) -> bool:
        return (
            t_switch < (1.0 - policy.threshold) * t_keep
            and (t_keep - t_switch) > policy.min_gain_s
        )

    t_keep = rem * t_batch

    # grow: the measured per-batch peak is over budget but enforcement
    # (off/warn) will not re-batch for us — act before the overrun grows.
    if (
        policy.allow_grow and budget is not None and peak > budget
        and batches < max_batches
    ):
        new_b = min(batches * 2, max_batches)
        if new_b > batches:
            return {"batches": new_b}, "over-budget"

    # shrink: the fixed per-batch cost (A re-broadcast) dominates, so
    # paying it fewer times beats the restart.
    if policy.allow_shrink and batches > 1:
        new_b = max(1, batches // 2)
        feasible = True
        if budget is not None:
            scaled_mem = max(0.0, peak - fixed_mem)
            pred_peak = fixed_mem + scaled_mem * (batches / new_b)
            feasible = pred_peak <= budget * policy.safety
        if feasible:
            t_switch = new_b * t_fixed + batches * t_scaled
            if better(t_switch, t_keep):
                return {"batches": new_b}, "fixed-cost-dominated"

    # flip: the calibrated α–β model prices the other backend's
    # communication under the measured one by enough margin to cover
    # redoing the already-computed batches (all of them without a
    # checkpoint, only the remainder with one).
    if policy.allow_backend_flip and t_comm > 0.0:
        modelled = dict(policy.modelled_comm)
        other = "sparse" if backend == "dense" else "dense"
        m_cur = modelled.get(backend)
        m_other = modelled.get(other)
        if m_cur and m_other:
            per_batch_other = t_batch - t_comm + t_comm * (m_other / m_cur)
            redo = rem if policy.resumable else batches
            t_switch = redo * per_batch_other
            if better(t_switch, t_keep):
                return {"comm_backend": other}, "comm-bound-backend"
    return None


class Replanner:
    """Per-rank controller consulted by the compiled ``replan-check`` op.

    Holds the policy plus the attempt's start batch (so the hysteresis
    counter measures batches observed *under the current plan*, not
    resumed-over ones).  :meth:`check` either returns quietly or raises
    a :class:`~repro.errors.ReplanSignal` — on every rank at once.
    """

    def __init__(self, policy: ReplanPolicy, *, start_batch: int = 0) -> None:
        self.policy = policy
        self.start_batch = int(start_batch)

    def measure(self, state, batch: int) -> dict:
        """This rank's local per-batch scalars from its tracer spans and
        ledger (pre-allreduce)."""
        t_fixed = t_scaled = t_comm = 0.0
        for span in state.tracer.spans:
            if span.batch != batch or not span.timed:
                continue
            if span.op in _FIXED_STEPS:
                t_fixed += span.duration
            elif span.op in _SCALED_STEPS:
                t_scaled += span.duration
            if span.op in _COMM_STEPS:
                t_comm += span.duration
        ledger = state.ledger
        return {
            "t_fixed": t_fixed,
            "t_scaled": t_scaled,
            "t_comm": t_comm,
            "peak": float(ledger.batch_peak(batch)),
            "fixed_mem": float(
                ledger.high_water("a_piece") + ledger.high_water("b_piece")
            ),
        }

    def check(self, state, batch: int) -> None:
        policy = self.policy
        if policy.revision >= policy.max_replans:
            return
        # forced amendments (deterministic test/demo hook): static data,
        # so every rank raises identically without any communication.
        for at, amend in policy.force:
            if int(at) == batch:
                raise ReplanSignal(
                    f"forced replan at batch {batch}: {dict(amend)}",
                    batch=batch, batches=state.batches,
                    amended=dict(amend), reason="forced",
                )
        if state.batches - (batch + 1) <= 0:
            return
        if (batch - self.start_batch + 1) < policy.min_batches:
            return
        local = self.measure(state, batch)
        # max-allreduce every scalar: all ranks then evaluate the pure
        # decision on identical inputs — a collective verdict.
        world = state.comms.world
        agreed = {
            key: float(world.allreduce(value, op="max"))
            for key, value in sorted(local.items())
        }
        budget = state.ledger.budget
        decision = decide_replan(
            policy,
            batches=state.batches,
            batch=batch,
            backend=state.backend.name,
            budget=None if budget is None else float(budget),
            max_batches=max(1, state.b_ncols),
            **agreed,
        )
        if decision is None:
            return
        amended, reason = decision
        raise ReplanSignal(
            f"replan at batch {batch} ({reason}): {amended}",
            batch=batch, batches=state.batches, amended=amended,
            reason=reason, measurements=agreed,
        )


def modelled_comm_per_batch(a, b, spec, batches: int | None) -> tuple:
    """Driver-side α–β per-batch communication estimate for both
    backends — the :class:`ReplanPolicy.modelled_comm` table.

    Runs one symbolic pass over the global operands (SpGEMM-family
    kernels only; the caller gates on ``kernel.supports_symbolic``).
    Returns ``()`` when the operands are not plain sparse matrices or
    the model cannot price them — the flip lever then simply stays off.
    """
    from ..model.machine import CORI_KNL
    from ..model.predictor import predict_steps
    from ..sparse.matrix import SparseMatrix
    from ..sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz

    if not (isinstance(a, SparseMatrix) and isinstance(b, SparseMatrix)):
        return ()
    b_eff = max(1, int(batches or 1))
    try:
        stats = dict(
            nnz_a=a.nnz, nnz_b=b.nnz,
            nnz_c=symbolic_nnz(a, b), flops=symbolic_flops(a, b),
        )
        table = []
        for be in ("dense", "sparse"):
            steps = predict_steps(
                CORI_KNL, nprocs=spec.nprocs, layers=spec.layers,
                batches=b_eff, comm_backend=be, inner_dim=a.ncols, **stats,
            )
            comm = sum(steps.get(s) for s in _COMM_STEPS)
            table.append((be, comm / b_eff))
        return tuple(table)
    except (ValueError, ZeroDivisionError):
        return ()
