"""First-class execution plans for the SUMMA family.

The paper's core loop — pick ``(grid, layers, b)`` from an analytic
model, then run under a memory constraint — used to be spelled as ~25
loose keyword arguments copy-pasted across every driver.  This package
reifies it into two values:

* :class:`ExecSpec` — the frozen *request*: every run knob (kernel,
  suite, semiring, comm backend, overlap, world/transport, batching,
  budgets + enforcement, resilience, spill/checkpoint, replanning), with
  ``to_dict``/``from_dict`` round-tripping that tolerates unknown keys
  (forward compatibility for checkpoint manifests and the serve layer).
* :class:`ExecPlan` — the resolved *decision*: a spec plus the chosen
  ``layers``/``batches``/``backend``, the model's predicted makespan and
  memory, and the provenance of how it was chosen (auto-config scoring,
  explicit knobs, or a mid-run amendment trail).

:func:`run_plan` executes a plan; the classic drivers
(:func:`~repro.summa.batched_summa3d` and friends) are thin shims that
build a spec from their kwargs through the single conversion point
:meth:`ExecSpec.from_kwargs`.  :class:`Replanner` re-examines the plan
at batch boundaries from measured evidence and may amend it mid-run.
"""

from __future__ import annotations

from .replan import (
    ReplanPolicy,
    Replanner,
    decide_replan,
    modelled_comm_per_batch,
)
from .spec import (
    REPLAN_MODES,
    SPEC_FIELDS,
    SPEC_VERSION,
    ExecPlan,
    ExecSpec,
)

__all__ = [
    "ExecPlan",
    "ExecSpec",
    "REPLAN_MODES",
    "ReplanPolicy",
    "Replanner",
    "SPEC_FIELDS",
    "SPEC_VERSION",
    "decide_replan",
    "modelled_comm_per_batch",
    "run_plan",
]


def __getattr__(name: str):
    # run_plan lives in repro.summa.batched (it *is* the driver); importing
    # it eagerly would make repro.plan depend on the whole SUMMA stack.
    if name == "run_plan":
        from ..summa.batched import run_plan
        return run_plan
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
