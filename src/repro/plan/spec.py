"""The reified execution plan: :class:`ExecSpec` and :class:`ExecPlan`.

Before this module the library's run configuration lived as ~25 loose
keyword arguments copy-pasted across ``batched_summa3d``, its ``_rows``
twin, ``summa2d/3d``, ``DistContext``, the CLI and ``repro.serve`` —
a call-site convention that had already drifted once.  Here the
configuration becomes a *value*:

* :class:`ExecSpec` — the frozen record of every run knob (kernel /
  suite / semiring, comm backend, overlap, world/transport, batching,
  budgets + enforcement, resilience, spill/checkpoint, replanning).
  ``ExecSpec.from_kwargs`` is the **single** legacy-kwargs → spec
  conversion point every driver shares, and ``to_dict`` / ``from_dict``
  round-trip the spec through JSON (unknown keys ride along in
  ``extra`` for forward compatibility — a newer writer's spec still
  loads, and re-serialises, under an older reader).

* :class:`ExecPlan` — a *resolved* spec: the chosen ``(layers,
  batches, backend)`` triple plus the model's predicted makespan and
  Table III memory estimate and the provenance of how the choice was
  made (explicit / auto-tuned / mid-run replan, with the measurements
  that drove it).  ``repro.summa.auto_config`` returns one, the serving
  plan cache stores them, ``run_plan`` executes them, and every
  :class:`~repro.summa.result.SummaResult` records the final resolved
  plan verbatim in ``info["plan"]``.

Runtime-only arguments — callables and operand-sized objects that have
no serialised form (``mask``, ``sample``, ``postprocess``, ``on_batch``,
``tracker``, ``faults``) — deliberately stay *out* of the spec; the
drivers accept them next to ``plan=``.

The ``suite`` / ``semiring`` / ``kernel`` / ``comm_backend`` fields hold
either a registry name (the normal, serialisable case) or a live
instance passed by an advanced caller; ``to_dict`` normalises instances
to their registry ``name``, so persisted plans are always plain data.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace

from ..errors import PlannerError, ShapeError
from ..simmpi.comm import DEFAULT_TIMEOUT
from ..sparse.matrix import BYTES_PER_NONZERO

#: serialisation format version of ``ExecSpec.to_dict`` / ``ExecPlan.to_dict``.
SPEC_VERSION = 1

#: supported settings of the ``replan=`` knob.
REPLAN_MODES = ("off", "auto")

#: ``world=`` values accepted by the drivers (mirrors ``repro.simmpi.engine``).
_WORLDS = ("threads", "processes")


def _registry_name(value):
    """Normalise a registry object (suite/semiring/kernel/backend) to its
    name; strings pass through."""
    if isinstance(value, str) or value is None:
        return value
    name = getattr(value, "name", None)
    if name is None and isinstance(value, type):
        name = getattr(value, "name", value.__name__)
    return str(name) if name is not None else str(value)


@dataclass(frozen=True)
class ExecSpec:
    """Every knob of one multiplication, as one frozen, serialisable value.

    Field semantics are exactly those of the same-named
    :func:`~repro.summa.batched_summa3d` keywords (which are now derived
    from this record); the replanning knobs are new:

    ``replan``
        ``"off"`` (default) or ``"auto"`` — enable the mid-run
        :class:`~repro.plan.replan.Replanner` at batch boundaries.
    ``replan_threshold``
        Hysteresis: an amended plan must predict at least this relative
        makespan gain over staying the course before it is adopted.
    ``replan_min_batches``
        Hysteresis: number of batches that must have been observed
        (measured) under the current plan before any amendment fires.
    ``max_replans``
        Hard bound on mid-run amendments per run (termination guarantee).
    ``replan_force``
        Deterministic testing/demo hook: ``((batch, {field: value}),
        ...)`` amendments applied unconditionally at the named batch
        boundaries, bypassing measurement.  Serialises like everything
        else.
    """

    nprocs: int = 4
    layers: int = 1
    batches: int | None = None
    memory_budget: int | None = None
    memory_budget_per_rank: int | None = None
    enforce: str = "off"
    bytes_per_nonzero: int = BYTES_PER_NONZERO
    suite: object = "esc"
    semiring: object = "plus_times"
    kernel: object = "spgemm"
    mask_complement: bool = False
    keep_output: bool = True
    batch_scheme: str = "block-cyclic"
    merge_policy: str = "deferred"
    comm_backend: object = "dense"
    overlap: str = "off"
    spill_dir: str | None = None
    timeout: float = DEFAULT_TIMEOUT
    checksums: bool | None = None
    max_retries: int | None = 3
    checkpoint_dir: str | None = None
    resume: bool = False
    checkpoint_keep_last: int | None = None
    heal: str | None = None
    world_spares: int = 0
    world: str = "threads"
    transport: str = "auto"
    replan: str = "off"
    replan_threshold: float = 0.15
    replan_min_batches: int = 1
    max_replans: int = 1
    replan_force: tuple = ()
    #: unknown keys from a newer writer's ``to_dict`` — preserved verbatim
    #: so round-tripping a forward-compatible dict is lossless.
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_kwargs(cls, **knobs) -> "ExecSpec":
        """The single legacy-kwargs → spec conversion point.

        Every driver's ``**knobs`` surface funnels through here, so the
        accepted knob set *is* the field set of this class — the two can
        never drift apart again.  Unknown knobs raise ``TypeError`` with
        the offending names, exactly like a misspelled keyword argument.
        """
        unknown = set(knobs) - set(SPEC_FIELDS)
        if unknown:
            raise TypeError(
                "unknown execution knob(s) "
                f"{', '.join(sorted(repr(k) for k in unknown))}; "
                "expected fields of repro.plan.ExecSpec"
            )
        for key in ("spill_dir", "checkpoint_dir"):
            if knobs.get(key) is not None:
                knobs[key] = os.fspath(knobs[key])
        if knobs.get("replan_force"):
            knobs["replan_force"] = _canon_force(knobs["replan_force"])
        return cls(**knobs)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def resolved_budget(self) -> tuple[int | None, int | None]:
        """``(aggregate, per_rank)`` through the library's single
        aggregate ↔ per-rank unit conversion point
        (:func:`repro.mem.resolve_budget`)."""
        from ..mem import resolve_budget

        return resolve_budget(
            self.memory_budget, self.memory_budget_per_rank, self.nprocs
        )

    def validate(self) -> "ExecSpec":
        """Check the knob combination is runnable; returns ``self``.

        Raises the same exception types (and messages) the drivers
        historically raised, so existing callers' error handling holds.
        """
        from ..mem import ENFORCE_MODES
        from ..resilience import HEAL_MODES
        from ..summa.exec import OVERLAP_MODES

        if self.batches is not None and self.batches < 1:
            raise ShapeError(f"batches must be >= 1, got {self.batches}")
        if self.overlap not in OVERLAP_MODES:
            raise ValueError(
                f"unknown overlap mode {self.overlap!r}; "
                f"expected one of {OVERLAP_MODES}"
            )
        if self.enforce not in ENFORCE_MODES:
            raise ValueError(
                f"unknown enforce mode {self.enforce!r}; "
                f"expected one of {ENFORCE_MODES}"
            )
        _agg, budget_per_rank = self.resolved_budget()
        if self.enforce != "off" and budget_per_rank is None:
            raise ValueError(
                f'enforce="{self.enforce}" needs a budget: pass '
                "memory_budget= (aggregate) or memory_budget_per_rank="
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir=")
        if self.heal is not None:
            if self.heal not in HEAL_MODES:
                raise ValueError(
                    f"unknown heal mode {self.heal!r}; "
                    f"expected one of {HEAL_MODES}"
                )
            if self.checkpoint_dir is None:
                raise ValueError(
                    "heal= requires checkpoint_dir=: the re-entry point of "
                    "an online heal is the last durably checkpointed batch"
                )
            if self.heal == "spare" and self.world_spares < 1:
                raise ValueError('heal="spare" needs world_spares >= 1')
        if self.world_spares < 0:
            raise ValueError(
                f"world_spares must be >= 0, got {self.world_spares}"
            )
        if self.replan not in REPLAN_MODES:
            raise ValueError(
                f"unknown replan mode {self.replan!r}; "
                f"expected one of {REPLAN_MODES}"
            )
        if self.replan != "off" and self.heal is not None:
            raise ValueError(
                "replan= cannot be combined with heal=: a mid-run "
                "amendment restarts through the re-batch path, which "
                "conflicts with the heal machinery's re-entry protocol"
            )
        if not 0.0 <= self.replan_threshold < 1.0:
            raise ValueError(
                "replan_threshold must be in [0, 1), got "
                f"{self.replan_threshold}"
            )
        if self.replan_min_batches < 1:
            raise ValueError(
                f"replan_min_batches must be >= 1, got {self.replan_min_batches}"
            )
        if self.max_replans < 0:
            raise ValueError(
                f"max_replans must be >= 0, got {self.max_replans}"
            )
        return self

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe): named fields plus preserved
        unknown keys, with registry objects normalised to their names."""
        d = {"spec_version": SPEC_VERSION}
        for name in SPEC_FIELDS:
            value = getattr(self, name)
            if name in ("suite", "semiring", "kernel", "comm_backend"):
                value = _registry_name(value)
            elif name == "replan_force":
                value = [[int(b), dict(a)] for b, a in value]
            d[name] = value
        d.update(self.extra)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExecSpec":
        """Inverse of :meth:`to_dict`; unknown keys land in ``extra``."""
        if not isinstance(d, dict):
            raise TypeError(f"ExecSpec.from_dict needs a dict, got {type(d)}")
        known = {}
        extra = {}
        for key, value in d.items():
            if key == "spec_version":
                continue
            if key in SPEC_FIELDS:
                known[key] = value
            else:
                extra[key] = value
        if "replan_force" in known:
            known["replan_force"] = _canon_force(known["replan_force"] or ())
        return cls(**known, extra=extra)

    def amended(self, **changes) -> "ExecSpec":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)


#: the knob names every driver surface is derived from (``extra`` is the
#: forward-compat carrier, not a knob).
SPEC_FIELDS = tuple(
    f.name for f in fields(ExecSpec) if f.name != "extra"
)


def _canon_force(force) -> tuple:
    """Canonicalise a ``replan_force`` value to ``((batch, {..}), ...)``."""
    out = []
    for item in force:
        batch, amend = item
        out.append((int(batch), dict(amend)))
    return tuple(out)


@dataclass(frozen=True)
class ExecPlan:
    """A resolved :class:`ExecSpec`: the chosen configuration plus the
    model's predictions and the provenance of the choice.

    Attribute-compatible with the historical ``PlanChoice`` (which is now
    a deprecated alias of this class): ``layers``, ``batches``,
    ``predicted_seconds``, ``candidates``, ``backend`` and
    ``predicted_memory`` keep their meaning and positional order.

    ``provenance`` records *how* the plan was chosen — ``{"mode":
    "explicit" | "auto" | "replan", ...}`` with mode-specific detail
    (the scoring basis for ``auto``, the measurements and amendment for
    ``replan``).  ``revision`` counts mid-run amendments: an original
    plan is revision 0 and every adopted replan bumps it by one.
    """

    layers: int = 1
    batches: int | None = None
    predicted_seconds: float | None = None
    candidates: tuple = ()
    backend: str = "dense"
    predicted_memory: dict | None = None
    spec: ExecSpec | None = None
    provenance: dict = field(default_factory=dict)
    revision: int = 0
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #

    def with_spec(self, **changes) -> "ExecPlan":
        """A copy whose embedded spec has ``changes`` applied — the hook
        runtime layers (the serving pool, the CLI) use to graft their
        slot-specific knobs (world, transport, timeout, resilience) onto
        a cached plan without disturbing the chosen configuration."""
        base = self.spec if self.spec is not None else ExecSpec()
        return replace(self, spec=base.amended(**changes))

    def amend(self, *, reason: str, measurements: dict | None = None,
              **changes) -> "ExecPlan":
        """The replanning transition: a new revision with ``changes``
        applied to the resolved choice (``batches=`` / ``backend=``) and
        the decision recorded in ``provenance``."""
        resolved = {
            k: changes.pop(k)
            for k in ("layers", "batches", "backend")
            if k in changes
        }
        if changes:
            raise PlannerError(
                f"ExecPlan.amend only changes the resolved choice "
                f"(layers/batches/backend), not {sorted(changes)}"
            )
        prov = dict(self.provenance)
        prov.setdefault("replans", [])
        prov["replans"] = list(prov["replans"]) + [{
            "reason": reason,
            "from": {"batches": self.batches, "backend": self.backend},
            "to": {
                "batches": resolved.get("batches", self.batches),
                "backend": resolved.get("backend", self.backend),
            },
            "measurements": dict(measurements or {}),
        }]
        prov["mode"] = "replan"
        spec = self.spec
        if spec is not None:
            spec = spec.amended(
                batches=resolved.get("batches", self.batches),
                comm_backend=resolved.get("backend", self.backend),
            )
        return replace(
            self, spec=spec, provenance=prov, revision=self.revision + 1,
            **resolved,
        )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        d = {
            "spec_version": SPEC_VERSION,
            "layers": self.layers,
            "batches": self.batches,
            "predicted_seconds": self.predicted_seconds,
            "candidates": [list(c) for c in self.candidates],
            "backend": _registry_name(self.backend),
            "predicted_memory": self.predicted_memory,
            "spec": None if self.spec is None else self.spec.to_dict(),
            "provenance": dict(self.provenance),
            "revision": self.revision,
        }
        d.update(self.extra)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExecPlan":
        if not isinstance(d, dict):
            raise TypeError(f"ExecPlan.from_dict needs a dict, got {type(d)}")
        known_names = {
            "layers", "batches", "predicted_seconds", "candidates",
            "backend", "predicted_memory", "spec", "provenance", "revision",
        }
        known = {}
        extra = {}
        for key, value in d.items():
            if key == "spec_version":
                continue
            if key in known_names:
                known[key] = value
            else:
                extra[key] = value
        if known.get("candidates"):
            known["candidates"] = tuple(
                tuple(c) for c in known["candidates"]
            )
        else:
            known["candidates"] = ()
        if known.get("spec") is not None:
            known["spec"] = ExecSpec.from_dict(known["spec"])
        known["provenance"] = dict(known.get("provenance") or {})
        return cls(**known, extra=extra)
