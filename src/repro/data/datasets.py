"""Scaled-down registry of the paper's Table V test matrices.

Each entry pairs the paper's reported statistics with a generator that
produces a laptop-scale stand-in preserving the statistics that drive the
algorithm: output expansion ``nnz(C)/nnz(A)``, compression factor
``cf = flops/nnz(C)``, and degree skew.  ``bench_table5_datasets`` prints
paper vs. achieved values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sparse.matrix import SparseMatrix
from ..sparse.ops import transpose
from ..sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz
from .generators import kmer_matrix, protein_similarity, rmat


@dataclass(frozen=True)
class PaperStats:
    """Table V row as published (absolute paper-scale numbers)."""

    rows: float
    cols: float
    nnz_a: float
    nnz_c: float
    flops: float

    @property
    def expansion(self) -> float:
        """nnz(C) / nnz(A) — how much the output outgrows the input."""
        return self.nnz_c / self.nnz_a

    @property
    def cf(self) -> float:
        """Compression factor flops / nnz(C)."""
        return self.flops / self.nnz_c


@dataclass(frozen=True)
class DatasetSpec:
    """One scaled dataset: paper statistics + a scaled generator.

    ``operation`` records which product the paper computes with it:
    ``"AA"`` (squaring) or ``"AAT"`` (A times its transpose).
    """

    name: str
    operation: str
    paper: PaperStats
    generator: Callable[[int], SparseMatrix]
    description: str

    def generate(self, seed: int = 0) -> SparseMatrix:
        return self.generator(seed)

    def operands(self, seed: int = 0) -> tuple[SparseMatrix, SparseMatrix]:
        """The (A, B) pair of the paper's experiment for this dataset."""
        a = self.generate(seed)
        return (a, transpose(a)) if self.operation == "AAT" else (a, a)

    def achieved_stats(self, seed: int = 0) -> dict[str, float]:
        """Statistics of the scaled instance, same fields as Table V."""
        a, b = self.operands(seed)
        nnz_c = symbolic_nnz(a, b)
        flops = symbolic_flops(a, b)
        return {
            "rows": a.nrows,
            "cols": a.ncols,
            "nnz_a": a.nnz,
            "nnz_c": nnz_c,
            "flops": flops,
            "expansion": nnz_c / a.nnz if a.nnz else 0.0,
            "cf": flops / nnz_c if nnz_c else 0.0,
        }


M, B, T = 1e6, 1e9, 1e12

DATASETS: dict[str, DatasetSpec] = {
    "eukarya": DatasetSpec(
        name="eukarya",
        operation="AA",
        paper=PaperStats(3 * M, 3 * M, 360 * M, 2 * B, 134 * B),
        generator=lambda seed: protein_similarity(
            900, intra_density=0.35, noise_degree=1.0, seed=seed
        ),
        description="protein-similarity network (IMG isolate genomes), smallest of the suite",
    ),
    "rice_kmers": DatasetSpec(
        name="rice_kmers",
        operation="AAT",
        paper=PaperStats(5 * M, 2 * B, 4.5 * B, 6 * B, 12.4 * B),
        generator=lambda seed: kmer_matrix(
            600, 40000, kmers_per_seq=15.0, zipf_exponent=0.35, seed=seed
        ),
        description="PacBio rice reads x k-mers (BELLA overlap); ~2 nnz per column, nnz(AAT) ~ nnz(A)",
    ),
    "metaclust20m": DatasetSpec(
        name="metaclust20m",
        operation="AAT",
        paper=PaperStats(20 * M, 244 * M, 2 * B, 312 * B, 347 * B),
        generator=lambda seed: kmer_matrix(
            800, 4000, kmers_per_seq=25.0, zipf_exponent=1.4, seed=seed
        ),
        description="protein sequences x k-mers (PASTIS); popular k-mers make AAT expand >100x",
    ),
    "isolates_small": DatasetSpec(
        name="isolates_small",
        operation="AA",
        paper=PaperStats(35 * M, 35 * M, 17 * B, 248 * B, 42 * T),
        generator=lambda seed: protein_similarity(
            1400, intra_density=0.45, noise_degree=1.5, seed=seed
        ),
        description="protein-similarity network, mid-size; cf ~ 170 (flop-heavy squaring)",
    ),
    "friendster": DatasetSpec(
        name="friendster",
        operation="AA",
        paper=PaperStats(66 * M, 66 * M, 3.6 * B, 1 * T, 1.4 * T),
        generator=lambda seed: rmat(11, edge_factor=6, seed=seed),
        description="online social network (SuiteSparse); power-law degrees, 278x output expansion",
    ),
    "isolates": DatasetSpec(
        name="isolates",
        operation="AA",
        paper=PaperStats(70 * M, 70 * M, 68 * B, 984 * B, 301 * T),
        generator=lambda seed: protein_similarity(
            2000, intra_density=0.5, noise_degree=1.5, seed=seed
        ),
        description="largest protein-similarity network; 300 Tflop squaring, 2.2 PB unmerged",
    ),
    "metaclust50": DatasetSpec(
        name="metaclust50",
        operation="AA",
        paper=PaperStats(282 * M, 282 * M, 37 * B, 1 * T, 92 * T),
        generator=lambda seed: protein_similarity(
            2400, intra_density=0.25, noise_degree=2.5, seed=seed
        ),
        description="Metaclust50 predicted-gene similarities; sparser than Isolates, comm-bound at scale",
    ),
}


def dataset_names() -> list[str]:
    """Registry keys in Table V order."""
    return list(DATASETS)


def load_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
