"""Synthetic workload generators and the scaled Table-V dataset registry."""

from .generators import (
    banded,
    erdos_renyi,
    small_world,
    kmer_matrix,
    planted_partition,
    protein_similarity,
    rmat,
)
from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset

__all__ = [
    "erdos_renyi",
    "small_world",
    "banded",
    "rmat",
    "protein_similarity",
    "planted_partition",
    "kmer_matrix",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
]
