"""Synthetic matrix generators standing in for the paper's datasets.

The paper's effects are driven by a handful of statistics — nonzeros per
row, the output expansion ``nnz(C) / nnz(A)``, the compression factor
``cf = flops / nnz(C)``, and degree skew — not by the biological identity
of the inputs.  Each generator here targets one input family:

* :func:`rmat` — Graph500-style recursive-matrix graphs with power-law
  degrees (stand-in for **Friendster**);
* :func:`protein_similarity` — block-community similarity graphs with
  power-law cluster sizes (stand-in for **Eukarya / Isolates /
  Metaclust50**: squaring them is flop-heavy because clusters multiply
  densely);
* :func:`kmer_matrix` — hypersparse bipartite sequence × k-mer matrices
  with Zipf k-mer popularity (stand-in for **Rice-kmers / Metaclust20m**,
  the A·Aᵀ overlap workloads);
* :func:`planted_partition` — ground-truth community graphs for validating
  the Markov-clustering application;
* :func:`erdos_renyi` — uniform baseline.
"""

from __future__ import annotations

import numpy as np

from ..sparse.construct import from_edges, random_sparse
from ..sparse.matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..utils.rng import as_rng


def erdos_renyi(
    n: int, *, avg_degree: float = 8.0, seed=None, symmetric: bool = True
) -> SparseMatrix:
    """Uniform random graph with ``avg_degree`` nonzeros per row."""
    nnz = int(n * avg_degree)
    m = random_sparse(n, n, nnz=nnz, seed=seed)
    if not symmetric:
        return m
    rows, cols, vals = m.to_coo()
    keep = rows <= cols
    edges = np.stack([rows[keep], cols[keep]], axis=1)
    return from_edges(n, n, edges, values=vals[keep], symmetric=True)


def rmat(
    scale: int,
    *,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
    symmetric: bool = True,
    values: str = "ones",
) -> SparseMatrix:
    """R-MAT / Graph500 graph on ``2**scale`` vertices.

    Each of ``edge_factor * 2**scale`` edges picks its quadrant bit-by-bit
    with probabilities ``(a, b, c, d = 1-a-b-c)``; the default parameters
    are the Graph500 skew, which yields the heavy power-law degree tail
    social networks like Friendster exhibit.  Duplicate edges collapse
    (values sum for ``values="uniform"``, or are reset to 1 for ``"ones"``).
    """
    if not 0 < a + b + c < 1:
        raise ValueError("require 0 < a + b + c < 1")
    n = 1 << scale
    nedges = edge_factor * n
    rng = as_rng(seed)
    rows = np.zeros(nedges, dtype=INDEX_DTYPE)
    cols = np.zeros(nedges, dtype=INDEX_DTYPE)
    d = 1.0 - a - b - c
    # quadrant probabilities as cumulative thresholds: TL, TR, BL, BR
    thresholds = np.cumsum([a, b, c, d])
    for bit in range(scale):
        draw = rng.random(nedges)
        quad = np.searchsorted(thresholds, draw, side="right")
        rows = (rows << 1) | (quad >= 2)   # bottom half sets the row bit
        cols = (cols << 1) | (quad % 2)    # right half sets the column bit
    if values == "ones":
        vals = np.ones(nedges, dtype=VALUE_DTYPE)
    else:
        vals = (1.0 - rng.random(nedges)).astype(VALUE_DTYPE)
    if symmetric:
        keep = rows <= cols
        edges = np.stack([rows[keep], cols[keep]], axis=1)
        m = from_edges(n, n, edges, values=vals[keep], symmetric=True)
    else:
        m = SparseMatrix.from_coo(n, n, rows, cols, vals)
    if values == "ones":
        # duplicate edges summed above; reset pattern weights to 1
        m = SparseMatrix(
            m.nrows, m.ncols, m.indptr, m.rowidx,
            np.ones(m.nnz, dtype=VALUE_DTYPE), validate=False,
        )
    return m


def small_world(
    n: int,
    *,
    k: int = 6,
    rewire: float = 0.1,
    seed=None,
) -> SparseMatrix:
    """Watts–Strogatz small-world graph.

    A ring lattice where each vertex connects to its ``k`` nearest
    neighbours, with each edge rewired to a random endpoint with
    probability ``rewire`` — high clustering with short paths, a common
    middle ground between the regular and power-law regimes of the other
    generators.
    """
    if k % 2 or k >= n:
        raise ValueError(f"k must be even and < n, got k={k}, n={n}")
    rng = as_rng(seed)
    us = np.repeat(np.arange(n, dtype=INDEX_DTYPE), k // 2)
    offsets = np.tile(np.arange(1, k // 2 + 1, dtype=INDEX_DTYPE), n)
    vs = (us + offsets) % n
    # rewire each lattice edge's far endpoint with probability `rewire`
    do_rewire = rng.random(us.shape[0]) < rewire
    vs = vs.copy()
    vs[do_rewire] = rng.integers(0, n, size=int(do_rewire.sum()))
    keep = us != vs
    edges = np.stack([us[keep], vs[keep]], axis=1)
    return from_edges(n, n, edges, symmetric=True)


def banded(
    n: int,
    *,
    bandwidth: int = 2,
    value: float = 1.0,
) -> SparseMatrix:
    """Banded matrix: entries on all diagonals within ``bandwidth``.

    The stencil/PDE regime — perfectly load balanced and low-cf, the
    antipode of the paper's skewed protein matrices; useful as the
    balanced control in imbalance experiments.
    """
    rows_parts = []
    cols_parts = []
    for off in range(-bandwidth, bandwidth + 1):
        lo, hi = max(0, -off), min(n, n - off)
        idx = np.arange(lo, hi, dtype=INDEX_DTYPE)
        rows_parts.append(idx)
        cols_parts.append(idx + off)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return SparseMatrix.from_coo(
        n, n, rows, cols, np.full(rows.shape[0], value, dtype=VALUE_DTYPE)
    )


def _power_law_sizes(total: int, rng, *, exponent: float = 2.0,
                     min_size: int = 2, max_frac: float = 0.1) -> np.ndarray:
    """Cluster sizes from a bounded discrete power law summing to ``total``."""
    max_size = max(min_size + 1, int(total * max_frac))
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        u = rng.random()
        # inverse-CDF sample of P(s) ~ s^-exponent on [min_size, max_size]
        lo, hi = float(min_size), float(max_size)
        s = (lo ** (1 - exponent) + u * (hi ** (1 - exponent) - lo ** (1 - exponent))) ** (
            1.0 / (1 - exponent)
        )
        size = int(min(remaining, max(min_size, round(s))))
        sizes.append(size)
        remaining -= size
    return np.array(sizes, dtype=INDEX_DTYPE)


def protein_similarity(
    n: int,
    *,
    intra_density: float = 0.4,
    noise_degree: float = 0.5,
    cluster_exponent: float = 2.0,
    seed=None,
) -> SparseMatrix:
    """Protein-similarity-like graph: power-law-sized dense communities.

    Vertices partition into clusters with power-law sizes; within a
    cluster a fraction ``intra_density`` of pairs are connected with
    similarity weights in (0.3, 1]; ``noise_degree`` random cross-cluster
    edges per vertex carry weak weights.  Squaring such a matrix is
    flop-heavy (high cf) because communities multiply densely — the regime
    that makes Eukarya / Isolates / Metaclust squaring memory-bound.
    The diagonal holds self-similarity 1.0, as real similarity matrices do.
    """
    rng = as_rng(seed)
    sizes = _power_law_sizes(n, rng, exponent=cluster_exponent)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    rows_parts = [np.arange(n, dtype=INDEX_DTYPE)]
    cols_parts = [np.arange(n, dtype=INDEX_DTYPE)]
    vals_parts = [np.ones(n, dtype=VALUE_DTYPE)]
    for ci in range(len(sizes)):
        lo, size = int(offsets[ci]), int(sizes[ci])
        npairs = size * (size - 1) // 2
        if npairs == 0:
            continue
        want = min(npairs, max(1, int(round(intra_density * npairs))))
        iu, ju = np.triu_indices(size, k=1)
        sel = rng.choice(npairs, size=want, replace=False)
        i = iu[sel].astype(INDEX_DTYPE)
        j = ju[sel].astype(INDEX_DTYPE)
        w = (0.3 + 0.7 * (1.0 - rng.random(want))).astype(VALUE_DTYPE)
        rows_parts += [lo + i, lo + j]
        cols_parts += [lo + j, lo + i]
        vals_parts += [w, w]
    nnoise = int(n * noise_degree)
    if nnoise:
        u = rng.integers(0, n, size=nnoise)
        v = rng.integers(0, n, size=nnoise)
        off = u != v
        u, v = u[off], v[off]
        w = (0.05 + 0.25 * (1.0 - rng.random(u.shape[0]))).astype(VALUE_DTYPE)
        rows_parts += [u, v]
        cols_parts += [v, u]
        vals_parts += [w, w]
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    vals = np.concatenate(vals_parts)
    # duplicates (noise landing on community edges) resolve by max-like sum
    # capping: from_coo sums; clamp to 1.0 to stay similarity-valued.
    m = SparseMatrix.from_coo(n, n, rows, cols, vals)
    np.clip(m.values, 0.0, 1.0, out=m.values)
    return m


def planted_partition(
    n: int,
    nclusters: int,
    *,
    p_in: float = 0.5,
    p_out: float = 0.01,
    seed=None,
) -> tuple[SparseMatrix, np.ndarray]:
    """Equal-size planted-partition graph with ground-truth labels.

    Returns ``(adjacency, labels)``; the Markov-clustering tests recover
    ``labels`` from the adjacency alone.
    """
    rng = as_rng(seed)
    labels = np.repeat(np.arange(nclusters, dtype=INDEX_DTYPE),
                       -(-n // nclusters))[:n]
    rows_parts = [np.arange(n, dtype=INDEX_DTYPE)]
    cols_parts = [np.arange(n, dtype=INDEX_DTYPE)]
    vals_parts = [np.ones(n, dtype=VALUE_DTYPE)]
    iu, ju = np.triu_indices(n, k=1)
    same = labels[iu] == labels[ju]
    prob = np.where(same, p_in, p_out)
    keep = rng.random(iu.shape[0]) < prob
    iu, ju = iu[keep].astype(INDEX_DTYPE), ju[keep].astype(INDEX_DTYPE)
    w = np.ones(iu.shape[0], dtype=VALUE_DTYPE)
    rows = np.concatenate(rows_parts + [iu, ju])
    cols = np.concatenate(cols_parts + [ju, iu])
    vals = np.concatenate(vals_parts + [w, w])
    return SparseMatrix.from_coo(n, n, rows, cols, vals), labels


def kmer_matrix(
    nseqs: int,
    nkmers: int,
    *,
    kmers_per_seq: float = 15.0,
    zipf_exponent: float = 1.2,
    seed=None,
) -> SparseMatrix:
    """Bipartite sequence × k-mer occurrence matrix.

    Row ``i`` marks the k-mers sequence ``i`` contains; k-mer popularity
    follows a (truncated) Zipf law, mirroring genomic k-mer spectra where
    a few repeats occur in many reads and most k-mers in very few.  The
    product ``A Aᵀ`` counts shared k-mers between sequence pairs — the
    BELLA / PASTIS candidate-generation workload (paper Sec. V-G).
    """
    rng = as_rng(seed)
    total = int(nseqs * kmers_per_seq)
    seqs = rng.integers(0, nseqs, size=total).astype(INDEX_DTYPE)
    # Zipf-ranked k-mer choice by inverse-CDF over ranks 1..nkmers
    ranks = np.arange(1, nkmers + 1, dtype=np.float64)
    weights = ranks ** (-zipf_exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    kmers = np.searchsorted(cdf, rng.random(total)).astype(INDEX_DTYPE)
    kmers = np.minimum(kmers, nkmers - 1)
    vals = np.ones(total, dtype=VALUE_DTYPE)
    m = SparseMatrix.from_coo(nseqs, nkmers, seqs, kmers, vals)
    # occurrence matrix is 0/1: collapse multiplicities
    m.values.fill(1.0)
    return m
