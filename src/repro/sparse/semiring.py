"""Semiring abstraction for SpGEMM.

The paper (Sec. II-A) notes the algorithms apply over an arbitrary semiring
since nothing Strassen-like is used.  A :class:`Semiring` bundles the two
binary operations as NumPy ufuncs so the vectorised kernels can use
``reduceat``-style segmented reductions for "add" and elementwise ufunc
application for "multiply".

Only value semantics change across semirings; sparsity structure handling
is identical, so every kernel and every distributed algorithm accepts an
optional semiring and defaults to ordinary ``(+, *)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring over float64 values.

    Attributes
    ----------
    name:
        Human-readable identifier.
    add:
        Commutative, associative NumPy ufunc used to combine partial
        products landing on the same output coordinate.
    mul:
        NumPy ufunc combining an A value with a B value.
    add_identity:
        Identity of ``add``; products equal to it are still *stored*
        (structural nonzero semantics follow GraphBLAS: an explicit entry
        is an entry), but it is what empty reductions would produce.
    """

    name: str
    add: np.ufunc
    mul: np.ufunc
    add_identity: float

    def reduce_segments(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segmented reduction of ``values`` at segment ``starts`` with ``add``."""
        if values.shape[0] == 0:
            return values
        return self.add.reduceat(values, starts)

    def __repr__(self) -> str:  # keep dataclass repr short — ufuncs are noisy
        return f"Semiring({self.name})"


#: Ordinary arithmetic: the default for all numeric workloads.
PLUS_TIMES = Semiring("plus_times", np.add, np.multiply, 0.0)

#: Tropical semiring: one step of all-pairs shortest paths per SpGEMM.
MIN_PLUS = Semiring("min_plus", np.minimum, np.add, float("inf"))

#: Widest-path / bottleneck semiring.
MAX_MIN = Semiring("max_min", np.maximum, np.minimum, float("-inf"))

#: Boolean reachability (values coerced through float 0/1 arithmetic).
OR_AND = Semiring("or_and", np.logical_or, np.logical_and, 0.0)

#: GraphBLAS PLUS_PAIR: every structural product contributes exactly 1,
#: regardless of values — counts intersections (e.g. common neighbours in
#: triangle counting) on weighted matrices without re-patterning them.
_pair = np.frompyfunc(lambda _x, _y: 1.0, 2, 1)
PLUS_PAIR = Semiring("plus_pair", np.add, _pair, 0.0)

_REGISTRY = {s.name: s for s in (PLUS_TIMES, MIN_PLUS, MAX_MIN, OR_AND, PLUS_PAIR)}


def get_semiring(name_or_semiring) -> Semiring:
    """Resolve a semiring by name or pass one through unchanged."""
    if isinstance(name_or_semiring, Semiring):
        return name_or_semiring
    try:
        return _REGISTRY[name_or_semiring]
    except KeyError:
        raise ValueError(
            f"unknown semiring {name_or_semiring!r}; available: {sorted(_REGISTRY)}"
        ) from None
