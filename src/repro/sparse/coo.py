"""COO (coordinate triple) utilities.

The distributed pipeline constantly moves matrices around as flat
``(rows, cols, vals)`` triples — they serialise trivially and merge by
key — so the COO <-> CSC conversions here are fully vectorised and are on
the hot path of almost every collective.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from .matrix import INDEX_DTYPE, VALUE_DTYPE


def sort_coo(nrows: int, rows, cols, vals):
    """Sort triples by (col, row) — CSC storage order.

    Returns new arrays; the sort is stable so equal keys (duplicates)
    preserve their input order, which matters for deterministic summation.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    cols = np.asarray(cols, dtype=INDEX_DTYPE)
    vals = np.asarray(vals, dtype=VALUE_DTYPE)
    key = cols * np.int64(max(nrows, 1)) + rows
    order = np.argsort(key, kind="stable")
    return rows[order], cols[order], vals[order]


def dedup_coo(nrows: int, rows, cols, vals):
    """Sort triples into CSC order and sum duplicate coordinates.

    This is the workhorse of every "merge" in the pipeline: given a pile of
    partial products, grouping by (col, row) and summing within groups is
    exactly the accumulation a hash table performs, done with one sort and
    one segmented reduction.
    """
    rows, cols, vals = sort_coo(nrows, rows, cols, vals)
    if rows.shape[0] == 0:
        return rows, cols, vals
    key = cols * np.int64(max(nrows, 1)) + rows
    boundary = np.empty(key.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    summed = np.add.reduceat(vals, starts)
    return rows[starts], cols[starts], summed


def coo_to_csc_arrays(
    nrows: int,
    ncols: int,
    rows,
    cols,
    vals,
    *,
    sum_duplicates: bool = True,
):
    """Convert COO triples to validated CSC arrays (indptr, rowidx, values).

    Raises :class:`~repro.errors.FormatError` on out-of-range coordinates.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    cols = np.asarray(cols, dtype=INDEX_DTYPE)
    vals = np.asarray(vals, dtype=VALUE_DTYPE)
    if not (rows.shape == cols.shape == vals.shape):
        raise FormatError(
            f"COO arrays have mismatched lengths "
            f"({rows.shape[0]}, {cols.shape[0]}, {vals.shape[0]})"
        )
    if rows.shape[0]:
        if rows.min() < 0 or rows.max() >= nrows:
            raise FormatError(f"row index out of range [0, {nrows})")
        if cols.min() < 0 or cols.max() >= ncols:
            raise FormatError(f"column index out of range [0, {ncols})")
    if sum_duplicates:
        rows, cols, vals = dedup_coo(nrows, rows, cols, vals)
    else:
        rows, cols, vals = sort_coo(nrows, rows, cols, vals)
    counts = np.bincount(cols, minlength=ncols).astype(INDEX_DTYPE)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return indptr, rows, vals


def concat_coo(parts):
    """Concatenate a sequence of (rows, cols, vals) triples into one."""
    if not parts:
        return (
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
        )
    rows = np.concatenate([np.asarray(p[0], dtype=INDEX_DTYPE) for p in parts])
    cols = np.concatenate([np.asarray(p[1], dtype=INDEX_DTYPE) for p in parts])
    vals = np.concatenate([np.asarray(p[2], dtype=VALUE_DTYPE) for p in parts])
    return rows, cols, vals
