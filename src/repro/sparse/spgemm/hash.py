"""Sort-free hash SpGEMM — the paper's new Local-Multiply kernel (Sec. IV-D).

Gustavson column-by-column: output column ``C(:, j)`` is the semiring sum
of columns ``A(:, k)`` scaled by ``B(k, j)``.  Each column is accumulated
in a hash table and emitted **without sorting**, in hash-insertion order.
The kernel neither requires sorted input columns nor produces sorted
output — the property that lets the distributed pipeline defer all sorting
to the final Merge-Fiber.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring
from .accumulators import HashAccumulator


def spgemm_hash(a: SparseMatrix, b: SparseMatrix, semiring=PLUS_TIMES) -> SparseMatrix:
    """``C = A @ B`` with per-column hash accumulation (unsorted output)."""
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    semiring = get_semiring(semiring)
    acc = HashAccumulator(semiring)
    mul = semiring.mul
    out_rows: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    counts = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    a_indptr, a_rowidx, a_values = a.indptr, a.rowidx, a.values
    for j in range(b.ncols):
        blo, bhi = b.indptr[j], b.indptr[j + 1]
        for t in range(blo, bhi):
            k = b.rowidx[t]
            bval = b.values[t]
            lo, hi = a_indptr[k], a_indptr[k + 1]
            if lo == hi:
                continue
            acc.scatter(
                a_rowidx[lo:hi],
                mul(a_values[lo:hi], bval).astype(VALUE_DTYPE, copy=False),
            )
        rows, vals = acc.gather()
        counts[j] = rows.shape[0]
        if rows.shape[0]:
            out_rows.append(rows)
            out_vals.append(vals)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    rowidx = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=INDEX_DTYPE)
    values = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=VALUE_DTYPE)
    return SparseMatrix(
        a.nrows, b.ncols, indptr, rowidx, values,
        sorted_within_columns=False, validate=False,
    )
