"""Intra-process threaded SpGEMM — the OpenMP dimension of MPI+OpenMP.

The paper's processes each run 16 OpenMP threads over disjoint output
columns (Gustavson parallelism, Sec. II-C).  This module reproduces that
level: the output columns are split into chunks, each chunk's multiply
runs on a worker thread, and the chunks concatenate — column
parallelism is embarrassingly parallel, so no merge is needed.  NumPy
releases the GIL inside its kernels, so the vectorised ESC kernel gains
real concurrency; the per-column Python kernels time-slice but remain
correct.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ...errors import ShapeError
from ..matrix import SparseMatrix
from ..ops import col_concat, col_split
from ..semiring import PLUS_TIMES, get_semiring
from .suite import get_suite


def spgemm_parallel(
    a: SparseMatrix,
    b: SparseMatrix,
    *,
    nthreads: int = 4,
    suite="esc",
    semiring=PLUS_TIMES,
) -> SparseMatrix:
    """``C = A @ B`` with output columns computed by a thread pool.

    Equivalent to ``multiply(a, b, suite, semiring)`` for every input;
    ``nthreads=1`` short-circuits to the serial kernel.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if nthreads < 1:
        raise ValueError(f"nthreads must be >= 1, got {nthreads}")
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    if suite.requires_sorted_inputs and not a.sorted_within_columns:
        a = a.sort_indices()
    if nthreads == 1 or b.ncols <= 1:
        return suite.local_multiply(a, b, semiring)
    chunks = col_split(b, min(nthreads, b.ncols))
    with ThreadPoolExecutor(max_workers=nthreads) as pool:
        parts = list(
            pool.map(lambda chunk: suite.local_multiply(a, chunk, semiring), chunks)
        )
    return col_concat(parts)
