"""Hybrid SpGEMM — the Nagasaka et al. [25] baseline the paper compares to.

Per output column, choose the accumulator by the column's expected work:
columns with little work (few partial products) use the heap merge, whose
low constant wins at small sizes; heavy columns use the hash accumulator.
Either way the column is **sorted after formation** — the paper's hash
kernel drops exactly this final sort.
"""

from __future__ import annotations

import numpy as np

from ...errors import FormatError, ShapeError
from ..matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring
from .accumulators import HashAccumulator
from .heap import spgemm_heap

#: Columns whose flops are below this use the heap path (low-constant
#: regime); above it the O(1)-per-product hash path wins.  The exact value
#: only shifts the crossover, mirroring the cf-based rule of [25].
HYBRID_FLOPS_THRESHOLD = 32


def spgemm_hybrid(
    a: SparseMatrix,
    b: SparseMatrix,
    semiring=PLUS_TIMES,
    *,
    flops_threshold: int = HYBRID_FLOPS_THRESHOLD,
) -> SparseMatrix:
    """``C = A @ B`` with per-column heap-or-hash choice, sorted output."""
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if not a.sorted_within_columns:
        raise FormatError("hybrid SpGEMM requires A sorted within columns")
    semiring = get_semiring(semiring)
    mul = semiring.mul
    a_col_nnz = np.diff(a.indptr)
    # per output column j: flops_j = sum of nnz(A(:,k)) over nonzeros B(k,j)
    per_entry = a_col_nnz[b.rowidx] if b.nnz else np.empty(0, dtype=INDEX_DTYPE)
    flops_per_col = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    if b.nnz:
        np.add.at(flops_per_col, b.col_indices(), per_entry)

    acc = HashAccumulator(semiring)
    out_rows: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    counts = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    for j in range(b.ncols):
        blo, bhi = int(b.indptr[j]), int(b.indptr[j + 1])
        if blo == bhi or flops_per_col[j] == 0:
            continue
        if flops_per_col[j] < flops_threshold:
            # heap path on the single column slice
            from ..ops import col_slice

            col = spgemm_heap(a, col_slice(b, j, j + 1), semiring)
            rows, vals = col.rowidx, col.values  # already sorted
        else:
            for t in range(blo, bhi):
                k = int(b.rowidx[t])
                lo, hi = int(a.indptr[k]), int(a.indptr[k + 1])
                if lo == hi:
                    continue
                acc.scatter(
                    a.rowidx[lo:hi],
                    mul(a.values[lo:hi], b.values[t]).astype(VALUE_DTYPE, copy=False),
                )
            rows, vals = acc.gather()
            order = np.argsort(rows, kind="stable")  # the hybrid's final sort
            rows, vals = rows[order], vals[order]
        counts[j] = rows.shape[0]
        if rows.shape[0]:
            out_rows.append(rows)
            out_vals.append(vals)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    rowidx = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=INDEX_DTYPE)
    values = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=VALUE_DTYPE)
    return SparseMatrix(
        a.nrows, b.ncols, indptr, rowidx, values,
        sorted_within_columns=True, validate=False,
    )
