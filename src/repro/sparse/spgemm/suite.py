"""Kernel suites: named bundles of (local multiply, merge) implementations.

The distributed algorithms take a :class:`KernelSuite` so the Fig. 15 /
Table VII ablation — this paper's sort-free hash kernels vs. the prior
sorted heap kernels vs. the hybrid of [25] — is a one-argument swap:

>>> from repro.sparse import get_suite
>>> get_suite("unsorted-hash").emits_sorted
False
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..matrix import SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring
from .esc import spgemm_esc
from .hash import spgemm_hash
from .heap import spgemm_heap
from .hybrid import spgemm_hybrid
from .spa import spgemm_spa


@dataclass(frozen=True)
class KernelSuite:
    """A coherent choice of local-multiply and k-way-merge kernels.

    Attributes
    ----------
    name:
        Registry key.
    local_multiply:
        ``(A, B, semiring) -> C`` kernel for one SUMMA stage.
    merge:
        ``(parts, semiring) -> merged`` k-way merge used for Merge-Layer
        and Merge-Fiber (see :mod:`repro.sparse.merge`).
    requires_sorted_inputs:
        Whether ``local_multiply`` needs A's columns sorted.
    emits_sorted:
        Whether intermediate results come out sorted.  The paper's point:
        only the *final* output must be sorted, so a suite with
        ``emits_sorted=False`` skips all intermediate sorting work.
    """

    name: str
    local_multiply: Callable
    merge: Callable
    requires_sorted_inputs: bool
    emits_sorted: bool


def _build_registry() -> dict[str, KernelSuite]:
    # imported here to avoid a circular import with merge.py
    from ..merge import merge_grouped, merge_hash, merge_heap

    return {
        # this paper (Sec. IV-D): hash multiply + hash merge, nothing sorted
        "unsorted-hash": KernelSuite(
            "unsorted-hash", spgemm_hash, merge_hash, False, False
        ),
        # prior work [13]: heap multiply + heap merge, everything sorted
        "sorted-heap": KernelSuite(
            "sorted-heap", spgemm_heap, merge_heap, True, True
        ),
        # Nagasaka et al. [25]: hybrid multiply (sorted out) + heap merge
        "hybrid": KernelSuite(
            "hybrid", spgemm_hybrid, merge_heap, True, True
        ),
        # SPA multiply + grouped merge (sorted) — accumulator-taxonomy point
        "spa": KernelSuite("spa", spgemm_spa, merge_grouped, False, True),
        # vectorised production default of this reproduction
        "esc": KernelSuite("esc", spgemm_esc, merge_grouped, False, True),
    }


_REGISTRY: dict[str, KernelSuite] | None = None


def get_suite(name_or_suite) -> KernelSuite:
    """Resolve a kernel suite by name, or pass a suite through unchanged."""
    global _REGISTRY
    if isinstance(name_or_suite, KernelSuite):
        return name_or_suite
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    try:
        return _REGISTRY[name_or_suite]
    except KeyError:
        raise ValueError(
            f"unknown kernel suite {name_or_suite!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_suites() -> list[str]:
    """Names of all registered kernel suites."""
    get_suite("esc")  # force registry construction
    assert _REGISTRY is not None
    return sorted(_REGISTRY)


def multiply(
    a: SparseMatrix,
    b: SparseMatrix,
    suite="esc",
    semiring=PLUS_TIMES,
) -> SparseMatrix:
    """Top-level local SpGEMM: ``C = A (x) B`` under a semiring and suite."""
    suite = get_suite(suite)
    semiring = get_semiring(semiring)
    if suite.requires_sorted_inputs and not a.sorted_within_columns:
        a = a.sort_indices()
    return suite.local_multiply(a, b, semiring)
