"""Local (single-process) SpGEMM kernels with pluggable accumulators.

The paper's Sec. IV-D centres on the choice of per-column accumulator and
on whether outputs are kept sorted:

========= ===================== ============== =====================
kernel    accumulator           output sorted  provenance
========= ===================== ============== =====================
``hash``  hash table            no (sort-free) this paper (Sec. IV-D)
``heap``  k-way heap merge      yes            prior SUMMA3D [13]
``hybrid``heap or hash + sort   yes            Nagasaka et al. [25]
``spa``   dense sparse accum.   yes            Gilbert et al. [21]
``esc``   sort + segmented add  yes            vectorised fast path
========= ===================== ============== =====================

``esc`` (expansion / sort / compress) is this reproduction's
NumPy-vectorised production default — in CPython the per-element loops of
the classic accumulators cannot compete with an O(flops log flops) sort at
C speed, so the repo-wide default favours it while the paper's hash/heap/
hybrid kernels remain faithful per-column implementations used by the
Fig. 15 / Table VII ablations.
"""

from .suite import KernelSuite, get_suite, multiply
from .esc import spgemm_esc
from .hash import spgemm_hash
from .heap import spgemm_heap
from .hybrid import spgemm_hybrid
from .spa import spgemm_spa
from .reference import spgemm_reference
from .symbolic import symbolic_flops, symbolic_nnz, symbolic_per_column

__all__ = [
    "KernelSuite",
    "get_suite",
    "multiply",
    "spgemm_esc",
    "spgemm_hash",
    "spgemm_heap",
    "spgemm_hybrid",
    "spgemm_spa",
    "spgemm_reference",
    "symbolic_flops",
    "symbolic_nnz",
    "symbolic_per_column",
]
