"""SPA-based SpGEMM — Gilbert/Moler/Schreiber dense sparse accumulator [21].

One dense value array of length ``nrows`` is reused across all output
columns with generation stamping; per column the scatter is a vectorised
``np.add.at``.  Included for completeness of the accumulator taxonomy the
paper surveys (Sec. II-C) and as an ablation point: SPA is fast when
columns are dense-ish but pays O(column gather) regardless of sparsity.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring
from .accumulators import SpAccumulator


def spgemm_spa(a: SparseMatrix, b: SparseMatrix, semiring=PLUS_TIMES) -> SparseMatrix:
    """``C = A @ B`` with a dense sparse accumulator (sorted output)."""
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    semiring = get_semiring(semiring)
    mul = semiring.mul
    acc = SpAccumulator(a.nrows, semiring)
    out_rows: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    counts = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    for j in range(b.ncols):
        blo, bhi = int(b.indptr[j]), int(b.indptr[j + 1])
        for t in range(blo, bhi):
            k = int(b.rowidx[t])
            lo, hi = int(a.indptr[k]), int(a.indptr[k + 1])
            if lo == hi:
                continue
            acc.scatter(
                a.rowidx[lo:hi],
                mul(a.values[lo:hi], b.values[t]).astype(VALUE_DTYPE, copy=False),
            )
        rows, vals = acc.gather()
        counts[j] = rows.shape[0]
        if rows.shape[0]:
            out_rows.append(rows)
            out_vals.append(vals)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    rowidx = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=INDEX_DTYPE)
    values = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=VALUE_DTYPE)
    return SparseMatrix(
        a.nrows, b.ncols, indptr, rowidx, values,
        sorted_within_columns=True, validate=False,
    )
