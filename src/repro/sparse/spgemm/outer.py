"""Outer-product SpGEMM formulation.

Gustavson's algorithm (the other kernels here) iterates over *output*
columns; the outer-product formulation iterates over the *inner*
dimension: ``C = sum_k A(:, k) B(k, :)`` — each inner index k contributes
a rank-1 update.  This is the formulation behind propagation-blocking
SpGEMM [27] and 1.5D/outer-product distributed algorithms; partial
products arrive in k-order (neither row- nor column-grouped), so an
explicit global accumulation pass is mandatory — exactly why it pairs
naturally with sort-based merging and is memory-hungry without blocking.

Included as the formulation-taxonomy point; numerically identical to the
other kernels.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring
from .esc import compress_products


def spgemm_outer(
    a: SparseMatrix,
    b: SparseMatrix,
    semiring=PLUS_TIMES,
    *,
    block_size: int = 64,
) -> SparseMatrix:
    """``C = A @ B`` via blocked rank-1 updates over the inner dimension.

    ``block_size`` inner indices are expanded per round (the propagation-
    blocking idea: bound the unmerged buffer instead of materialising all
    ``flops`` products at once); rounds are merged incrementally.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    semiring = get_semiring(semiring)
    # B in row-major access: transpose once so B's row k is a column slice
    from ..ops import transpose

    bt = transpose(b)  # bt column k = B row k
    out = SparseMatrix.empty(a.nrows, b.ncols)
    for k0 in range(0, a.ncols, block_size):
        k1 = min(k0 + block_size, a.ncols)
        rows_parts = []
        cols_parts = []
        vals_parts = []
        for k in range(k0, k1):
            alo, ahi = int(a.indptr[k]), int(a.indptr[k + 1])
            blo, bhi = int(bt.indptr[k]), int(bt.indptr[k + 1])
            if alo == ahi or blo == bhi:
                continue
            a_rows = a.rowidx[alo:ahi]
            a_vals = a.values[alo:ahi]
            b_cols = bt.rowidx[blo:bhi]
            b_vals = bt.values[blo:bhi]
            # rank-1 update: all pairs (i, j) with A(i,k), B(k,j) nonzero
            rows_parts.append(np.repeat(a_rows, b_cols.shape[0]))
            cols_parts.append(np.tile(b_cols, a_rows.shape[0]))
            vals_parts.append(
                semiring.mul(
                    np.repeat(a_vals, b_vals.shape[0]),
                    np.tile(b_vals, a_vals.shape[0]),
                ).astype(VALUE_DTYPE, copy=False)
            )
        if not rows_parts:
            continue
        block = compress_products(
            a.nrows, b.ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
            semiring,
        )
        from ..merge import merge_grouped

        out = merge_grouped([out, block], semiring=semiring) if out.nnz else block
    return out
