"""Heap-based SpGEMM — the prior-work Local-Multiply baseline ([13]).

Each output column is formed by a k-way merge over the (sorted) input
columns ``A(:, k)`` selected by the nonzeros of ``B(:, j)``, driven by a
binary heap keyed on row index.  Requires sorted input columns; emits
sorted output columns.  Per partial product it pays a heap push/pop of
cost O(log nnz(B(:, j))) — the overhead the paper's hash kernel removes.
"""

from __future__ import annotations

import heapq

import numpy as np

from ...errors import FormatError, ShapeError
from ..matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring


def spgemm_heap(a: SparseMatrix, b: SparseMatrix, semiring=PLUS_TIMES) -> SparseMatrix:
    """``C = A @ B`` via per-column k-way heap merge (sorted in, sorted out)."""
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if not a.sorted_within_columns:
        raise FormatError("heap SpGEMM requires A sorted within columns")
    semiring = get_semiring(semiring)
    add, mul = semiring.add, semiring.mul
    out_rows: list[int] = []
    out_vals: list[float] = []
    counts = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    a_indptr = a.indptr
    a_rowidx = a.rowidx
    a_values = a.values
    for j in range(b.ncols):
        blo, bhi = int(b.indptr[j]), int(b.indptr[j + 1])
        # heap entries: (row, source list index, cursor into A column)
        heap: list[tuple[int, int, int]] = []
        sources: list[tuple[int, int, float]] = []  # (lo, hi, b value)
        for t in range(blo, bhi):
            k = int(b.rowidx[t])
            lo, hi = int(a_indptr[k]), int(a_indptr[k + 1])
            if lo == hi:
                continue
            src = len(sources)
            sources.append((lo, hi, float(b.values[t])))
            heap.append((int(a_rowidx[lo]), src, lo))
        heapq.heapify(heap)
        before = len(out_rows)
        cur_row = -1
        cur_val = 0.0
        while heap:
            row, src, cursor = heapq.heappop(heap)
            _, hi, bval = sources[src]
            contrib = float(mul(a_values[cursor], bval))
            if row == cur_row:
                cur_val = float(add(cur_val, contrib))
            else:
                if cur_row >= 0:
                    out_rows.append(cur_row)
                    out_vals.append(cur_val)
                cur_row, cur_val = row, contrib
            cursor += 1
            if cursor < hi:
                heapq.heappush(heap, (int(a_rowidx[cursor]), src, cursor))
        if cur_row >= 0:
            out_rows.append(cur_row)
            out_vals.append(cur_val)
        counts[j] = len(out_rows) - before
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return SparseMatrix(
        a.nrows,
        b.ncols,
        indptr,
        np.array(out_rows, dtype=INDEX_DTYPE),
        np.array(out_vals, dtype=VALUE_DTYPE),
        sorted_within_columns=True,
        validate=False,
    )
