"""Masked SpGEMM: compute only the output entries a mask permits.

Several of the paper's applications never need the full product — triangle
counting keeps only the entries of ``L @ U`` that coincide with edges of
``A`` (Sec. V-B).  Computing ``C = (A @ B) .* M`` *during* the multiply
(GraphBLAS ``mxm`` with a mask) discards partial products whose output
coordinate is outside the mask before they ever reach an accumulator,
shrinking the intermediate from ``flops`` entries to only those landing on
``nnz(M)`` coordinates.

The implementation extends the vectorised ESC kernel: partial products
are expanded as usual, filtered by membership of their ``(row, col)`` key
in the mask's (sorted) key set with one ``searchsorted``, then compressed.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring
from .esc import compress_products, expand_products


def _mask_keys(mask: SparseMatrix) -> np.ndarray:
    """Sorted flat coordinate keys of the mask's pattern."""
    keys = mask.col_indices() * np.int64(max(mask.nrows, 1)) + mask.rowidx
    keys.sort()
    return keys


def spgemm_masked(
    a: SparseMatrix,
    b: SparseMatrix,
    mask: SparseMatrix,
    semiring=PLUS_TIMES,
    *,
    complement: bool = False,
) -> SparseMatrix:
    """``C = (A @ B) .* pattern(M)`` (or ``.* !pattern(M)`` if
    ``complement``), with the mask applied before accumulation.

    The mask's values are ignored; only its sparsity pattern filters.
    Raises :class:`~repro.errors.ShapeError` if the mask shape does not
    match the product shape.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if mask.shape != (a.nrows, b.ncols):
        raise ShapeError(
            f"mask shape {mask.shape} != product shape {(a.nrows, b.ncols)}"
        )
    semiring = get_semiring(semiring)
    rows, cols, vals = expand_products(a, b, semiring)
    if rows.shape[0]:
        keys = cols * np.int64(max(a.nrows, 1)) + rows
        mkeys = _mask_keys(mask)
        pos = np.searchsorted(mkeys, keys)
        pos = np.minimum(pos, max(mkeys.shape[0] - 1, 0))
        inside = (
            mkeys[pos] == keys if mkeys.shape[0] else np.zeros(keys.shape[0], bool)
        )
        keep = ~inside if complement else inside
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    return compress_products(a.nrows, b.ncols, rows, cols, vals, semiring)
