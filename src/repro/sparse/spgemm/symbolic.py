"""Symbolic SpGEMM: structure-only analysis of ``A @ B``.

The distributed symbolic step (paper Alg. 3) needs, per process, the
number of nonzeros its local multiply *would* produce — without computing
values.  These kernels provide:

* :func:`symbolic_flops` — number of partial products (``flops``),
  an O(nnz(B)) vectorised count;
* :func:`symbolic_nnz` — ``nnz(A @ B)`` after merging, via a values-free
  ESC pass;
* :func:`symbolic_per_column` — per-output-column ``(nnz, flops)``, the
  basis of compression-factor statistics and the hybrid kernel's policy.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import INDEX_DTYPE, SparseMatrix


def _check(a: SparseMatrix, b: SparseMatrix) -> None:
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )


def symbolic_flops(a: SparseMatrix, b: SparseMatrix) -> int:
    """Number of scalar multiplications in ``A @ B``."""
    _check(a, b)
    if b.nnz == 0:
        return 0
    return int(np.diff(a.indptr)[b.rowidx].sum())


def _expanded_keys(a: SparseMatrix, b: SparseMatrix) -> np.ndarray:
    """(col, row) keys of all partial products, unmerged."""
    k = b.rowidx
    lens = np.diff(a.indptr)[k]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_starts = np.cumsum(lens) - lens
    offsets = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(seg_starts, lens)
    gather = np.repeat(a.indptr[k], lens) + offsets
    rows = a.rowidx[gather]
    cols = np.repeat(b.col_indices(), lens)
    return cols * np.int64(max(a.nrows, 1)) + rows


def symbolic_nnz(a: SparseMatrix, b: SparseMatrix) -> int:
    """``nnz(A @ B)`` (structural: no numeric cancellation assumed)."""
    _check(a, b)
    if a.nnz == 0 or b.nnz == 0:
        return 0
    keys = _expanded_keys(a, b)
    if keys.shape[0] == 0:
        return 0
    return int(np.unique(keys).shape[0])


def symbolic_per_column(
    a: SparseMatrix, b: SparseMatrix
) -> tuple[np.ndarray, np.ndarray]:
    """Per-output-column ``(nnz_j, flops_j)`` arrays of length ``b.ncols``."""
    _check(a, b)
    flops_per_col = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    nnz_per_col = np.zeros(b.ncols, dtype=INDEX_DTYPE)
    if a.nnz == 0 or b.nnz == 0:
        return nnz_per_col, flops_per_col
    per_entry = np.diff(a.indptr)[b.rowidx]
    np.add.at(flops_per_col, b.col_indices(), per_entry)
    keys = _expanded_keys(a, b)
    if keys.shape[0]:
        uniq = np.unique(keys)
        out_cols = uniq // np.int64(max(a.nrows, 1))
        nnz_per_col += np.bincount(
            out_cols, minlength=b.ncols
        ).astype(INDEX_DTYPE)
    return nnz_per_col, flops_per_col


def symbolic_pattern(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """The structural pattern of ``A @ B`` as a sparse matrix of ones.

    This is the symbolic pass as a *mask producer*: masked SpGEMM with
    this pattern keeps every structural nonzero, so it reproduces the
    unmasked product — and any sparser mask is a subset of it.
    """
    _check(a, b)
    keys = _expanded_keys(a, b)
    if keys.shape[0] == 0:
        return SparseMatrix.empty(a.nrows, b.ncols)
    uniq = np.unique(keys)
    n = np.int64(max(a.nrows, 1))
    cols = uniq // n
    rows = uniq - cols * n
    return SparseMatrix.from_coo(
        a.nrows, b.ncols, rows, cols, np.ones(uniq.shape[0]),
        sum_duplicates=False,
    )


def compression_factor(a: SparseMatrix, b: SparseMatrix) -> float:
    """cf = flops / nnz(C) (paper Sec. II-A); >= 1 whenever C is nonempty."""
    nnz_c = symbolic_nnz(a, b)
    if nnz_c == 0:
        return 1.0
    return symbolic_flops(a, b) / nnz_c
