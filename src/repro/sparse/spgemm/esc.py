"""Vectorised ESC (Expand / Sort / Compress) SpGEMM.

For ``C = A @ B`` every nonzero ``B(k, j)`` expands into ``nnz(A(:, k))``
partial products.  The expansion is materialised as flat COO arrays with
pure NumPy gather arithmetic, then compressed by one key sort plus a
segmented reduction.  Cost: O(flops) to expand, O(flops log flops) to
sort — all at C speed, which in CPython beats any per-element accumulator
loop by orders of magnitude.  This is the reproduction's production
default kernel (see the package docstring for how it relates to the
paper's hash/heap/hybrid kernels).
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, Semiring, get_semiring


def expand_products(
    a: SparseMatrix, b: SparseMatrix, semiring: Semiring = PLUS_TIMES
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise all partial products of ``A @ B`` as COO triples.

    Returns ``(rows, cols, vals)`` of length exactly ``flops``; duplicates
    are *not* merged.  This is also the building block of the distributed
    Local-Multiply, whose unmerged result size is what the paper's memory
    analysis (Eq. 1) bounds.
    """
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    if a.nnz == 0 or b.nnz == 0:
        empty_i = np.empty(0, dtype=INDEX_DTYPE)
        return empty_i, empty_i.copy(), np.empty(0, dtype=VALUE_DTYPE)
    k = b.rowidx                       # inner index of each B nonzero
    lens = np.diff(a.indptr)[k]        # expansion length per B nonzero
    total = int(lens.sum())            # == flops
    if total == 0:
        empty_i = np.empty(0, dtype=INDEX_DTYPE)
        return empty_i, empty_i.copy(), np.empty(0, dtype=VALUE_DTYPE)
    # Gather indices into A's storage: for B nonzero t, the contiguous span
    # A.indptr[k[t]] .. +lens[t]. Built without Python loops:
    seg_ends = np.cumsum(lens)
    seg_starts = seg_ends - lens
    offsets = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(seg_starts, lens)
    gather = np.repeat(a.indptr[k], lens) + offsets
    rows = a.rowidx[gather]
    vals = semiring.mul(a.values[gather], np.repeat(b.values, lens)).astype(
        VALUE_DTYPE, copy=False
    )
    cols = np.repeat(b.col_indices(), lens)
    return rows, cols, vals


def compress_products(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
) -> SparseMatrix:
    """Merge COO partial products into a sorted CSC matrix."""
    if rows.shape[0] == 0:
        return SparseMatrix.empty(nrows, ncols)
    key = cols * np.int64(max(nrows, 1)) + rows
    order = np.argsort(key, kind="stable")
    key = key[order]
    boundary = np.empty(key.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    merged_vals = semiring.reduce_segments(vals[order], starts).astype(
        VALUE_DTYPE, copy=False
    )
    merged_rows = rows[order][starts]
    merged_cols = cols[order][starts]
    counts = np.bincount(merged_cols, minlength=ncols).astype(INDEX_DTYPE)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return SparseMatrix(
        nrows, ncols, indptr, merged_rows, merged_vals,
        sorted_within_columns=True, validate=False,
    )


def spgemm_esc(
    a: SparseMatrix, b: SparseMatrix, semiring=PLUS_TIMES
) -> SparseMatrix:
    """``C = A @ B`` via expand/sort/compress.  Accepts unsorted inputs;
    emits sorted columns."""
    semiring = get_semiring(semiring)
    rows, cols, vals = expand_products(a, b, semiring)
    return compress_products(a.nrows, b.ncols, rows, cols, vals, semiring)
