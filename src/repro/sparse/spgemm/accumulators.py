"""Per-column accumulators for Gustavson-style SpGEMM.

An accumulator receives (row, value) contributions for one output column
and yields the merged column.  The three classic choices the paper
discusses (Sec. II-C) are implemented:

* :class:`HashAccumulator` — hash-table accumulation; works with unsorted
  input, emits entries in **insertion order** (the "sort-free" property the
  paper exploits).  Backed by the CPython dict, which is an open-addressing
  hash table with insertion-order iteration — exactly the semantics of the
  paper's hash kernel.
* :class:`SpAccumulator` — Gilbert/Moler/Schreiber dense sparse accumulator
  (SPA): dense value array + generation-stamped occupancy map, O(1)
  scatter, output gathered in sorted row order.
* heap accumulation lives in :mod:`repro.sparse.spgemm.heap` since it is a
  merge of already-sorted streams rather than a scatter target.
"""

from __future__ import annotations

import numpy as np

from ..matrix import INDEX_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES, Semiring


class HashAccumulator:
    """Hash-table accumulator with insertion-order output.

    >>> acc = HashAccumulator()
    >>> acc.scatter(np.array([5, 2, 5]), np.array([1.0, 2.0, 3.0]))
    >>> acc.gather()
    (array([5, 2]), array([4., 2.]))
    """

    __slots__ = ("_table", "_add")

    def __init__(self, semiring: Semiring = PLUS_TIMES) -> None:
        self._table: dict[int, float] = {}
        self._add = semiring.add

    def scatter(self, rows: np.ndarray, vals: np.ndarray) -> None:
        """Accumulate a batch of (row, value) contributions."""
        table = self._table
        add = self._add
        for r, v in zip(rows.tolist(), vals.tolist()):
            prev = table.get(r)
            table[r] = v if prev is None else float(add(prev, v))

    def gather(self) -> tuple[np.ndarray, np.ndarray]:
        """Emit (rows, values) in insertion order and reset."""
        table = self._table
        rows = np.fromiter(table.keys(), dtype=INDEX_DTYPE, count=len(table))
        vals = np.fromiter(table.values(), dtype=VALUE_DTYPE, count=len(table))
        table.clear()
        return rows, vals

    def __len__(self) -> int:
        return len(self._table)


class SpAccumulator:
    """Dense sparse accumulator (SPA) reused across columns.

    The dense arrays are allocated once for the whole multiplication; a
    generation counter marks which slots belong to the current column, so
    per-column reset is O(nnz of column), not O(nrows).
    """

    __slots__ = ("_values", "_stamp", "_generation", "_occupied", "_add")

    def __init__(self, nrows: int, semiring: Semiring = PLUS_TIMES) -> None:
        self._values = np.zeros(nrows, dtype=VALUE_DTYPE)
        self._stamp = np.full(nrows, -1, dtype=INDEX_DTYPE)
        self._generation = 0
        self._occupied: list[int] = []
        self._add = semiring.add

    def scatter(self, rows: np.ndarray, vals: np.ndarray) -> None:
        """Accumulate contributions into the dense array.

        For the plus_times semiring the scatter is fully vectorised with
        ``np.add.at``; other semirings fall back to a scalar loop because
        ``ufunc.at`` with arbitrary ufuncs over repeated indices is the
        same operation.
        """
        gen = self._generation
        stamp = self._stamp
        values = self._values
        fresh = stamp[rows] != gen
        if fresh.any():
            new_rows = np.unique(rows[fresh])
            stamp[new_rows] = gen
            values[new_rows] = 0.0 if self._add is np.add else np.nan
            self._occupied.extend(new_rows.tolist())
        if self._add is np.add:
            np.add.at(values, rows, vals)
        else:
            add = self._add
            for r, v in zip(rows.tolist(), vals.tolist()):
                cur = values[r]
                values[r] = v if np.isnan(cur) else float(add(cur, v))

    def gather(self) -> tuple[np.ndarray, np.ndarray]:
        """Emit (rows, values) sorted by row and advance the generation."""
        rows = np.array(sorted(self._occupied), dtype=INDEX_DTYPE)
        vals = self._values[rows].copy()
        self._occupied.clear()
        self._generation += 1
        return rows, vals

    def __len__(self) -> int:
        return len(self._occupied)
