"""Deliberately simple reference SpGEMM used as an in-library oracle.

Written for obvious correctness, not speed: a straight transcription of
Gustavson's column formulation with a plain dictionary.  The test suite
cross-checks every optimised kernel against this *and* against
``scipy.sparse`` (two independent oracles).
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from ..semiring import PLUS_TIMES, get_semiring


def spgemm_reference(
    a: SparseMatrix, b: SparseMatrix, semiring=PLUS_TIMES
) -> SparseMatrix:
    """``C = A @ B`` by the textbook algorithm (sorted output)."""
    if a.ncols != b.nrows:
        raise ShapeError(
            f"cannot multiply {a.nrows}x{a.ncols} by {b.nrows}x{b.ncols}"
        )
    semiring = get_semiring(semiring)
    rows_out: list[int] = []
    cols_out: list[int] = []
    vals_out: list[float] = []
    for j in range(b.ncols):
        acc: dict[int, float] = {}
        for t in range(int(b.indptr[j]), int(b.indptr[j + 1])):
            k = int(b.rowidx[t])
            bval = b.values[t]
            for s in range(int(a.indptr[k]), int(a.indptr[k + 1])):
                r = int(a.rowidx[s])
                contrib = float(semiring.mul(a.values[s], bval))
                if r in acc:
                    acc[r] = float(semiring.add(acc[r], contrib))
                else:
                    acc[r] = contrib
        for r in sorted(acc):
            rows_out.append(r)
            cols_out.append(j)
            vals_out.append(acc[r])
    return SparseMatrix.from_coo(
        a.nrows,
        b.ncols,
        np.array(rows_out, dtype=INDEX_DTYPE),
        np.array(cols_out, dtype=INDEX_DTYPE),
        np.array(vals_out, dtype=VALUE_DTYPE),
        sum_duplicates=False,
    )
