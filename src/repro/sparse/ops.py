"""Structural operations on CSC matrices.

These are the data-layout primitives the distributed algorithms are made
of: column splitting for batches (plain and block-cyclic, Fig. 1(i) of the
paper), column concatenation for reassembling batched output (Alg. 4
line 7), tile extraction for grid distribution, transpose for the A·Aᵀ
applications, triangular extraction for triangle counting, and the pruning
operators HipMCL applies to each output batch.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix


# --------------------------------------------------------------------- #
# transpose and triangular parts
# --------------------------------------------------------------------- #

def transpose(a: SparseMatrix) -> SparseMatrix:
    """Transpose; output is sorted within columns (CSC of Aᵀ == CSR of A)."""
    rows, cols, vals = a.rowidx, a.col_indices(), a.values
    return SparseMatrix.from_coo(a.ncols, a.nrows, cols, rows, vals, sum_duplicates=False)


def triu(a: SparseMatrix, k: int = 0) -> SparseMatrix:
    """Entries on or above the ``k``-th diagonal (``k=1`` is strict upper)."""
    return _tri_filter(a, lambda r, c: c - r >= k)


def tril(a: SparseMatrix, k: int = 0) -> SparseMatrix:
    """Entries on or below the ``k``-th diagonal (``k=-1`` is strict lower)."""
    return _tri_filter(a, lambda r, c: c - r <= k)


def _tri_filter(a: SparseMatrix, pred) -> SparseMatrix:
    cols = a.col_indices()
    keep = pred(a.rowidx, cols)
    csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
    indptr = csum[a.indptr]
    return SparseMatrix(
        a.nrows, a.ncols, indptr, a.rowidx[keep], a.values[keep],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


# --------------------------------------------------------------------- #
# scaling
# --------------------------------------------------------------------- #

def scale_columns(a: SparseMatrix, scales) -> SparseMatrix:
    """Multiply column ``j`` by ``scales[j]`` (e.g. MCL column normalise)."""
    scales = np.asarray(scales, dtype=VALUE_DTYPE)
    if scales.shape != (a.ncols,):
        raise ShapeError(f"scales has shape {scales.shape}, expected ({a.ncols},)")
    values = a.values * np.repeat(scales, np.diff(a.indptr))
    return SparseMatrix(
        a.nrows, a.ncols, a.indptr, a.rowidx, values,
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def scale_rows(a: SparseMatrix, scales) -> SparseMatrix:
    """Multiply row ``i`` by ``scales[i]``."""
    scales = np.asarray(scales, dtype=VALUE_DTYPE)
    if scales.shape != (a.nrows,):
        raise ShapeError(f"scales has shape {scales.shape}, expected ({a.nrows},)")
    values = a.values * scales[a.rowidx]
    return SparseMatrix(
        a.nrows, a.ncols, a.indptr, a.rowidx, values,
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def elementwise_power(a: SparseMatrix, exponent: float) -> SparseMatrix:
    """Raise each stored value to ``exponent`` (MCL inflation kernel)."""
    return SparseMatrix(
        a.nrows, a.ncols, a.indptr, a.rowidx, np.power(a.values, exponent),
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


# --------------------------------------------------------------------- #
# column slicing / splitting / concatenation
# --------------------------------------------------------------------- #

def col_slice(a: SparseMatrix, start: int, stop: int) -> SparseMatrix:
    """Columns ``[start, stop)`` as a new matrix of width ``stop - start``."""
    if not 0 <= start <= stop <= a.ncols:
        raise ShapeError(f"column range [{start}, {stop}) invalid for ncols={a.ncols}")
    lo, hi = a.indptr[start], a.indptr[stop]
    return SparseMatrix(
        a.nrows,
        stop - start,
        a.indptr[start : stop + 1] - lo,
        a.rowidx[lo:hi],
        a.values[lo:hi],
        sorted_within_columns=a.sorted_within_columns,
        validate=False,
    )


def col_select(a: SparseMatrix, cols) -> SparseMatrix:
    """Gather an arbitrary list of columns (in the given order)."""
    cols = np.asarray(cols, dtype=INDEX_DTYPE)
    if cols.shape[0] and (cols.min() < 0 or cols.max() >= a.ncols):
        raise ShapeError(f"column selection out of range [0, {a.ncols})")
    counts = np.diff(a.indptr)[cols]
    indptr = np.concatenate(([0], np.cumsum(counts, dtype=INDEX_DTYPE)))
    total = int(indptr[-1])
    # gather indices: for each selected column, its contiguous CSC span
    starts = a.indptr[cols]
    offsets = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(indptr[:-1], counts)
    gather = np.repeat(starts, counts) + offsets
    return SparseMatrix(
        a.nrows, cols.shape[0], indptr, a.rowidx[gather], a.values[gather],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def nonempty_columns(a: SparseMatrix) -> np.ndarray:
    """Boolean mask (length ``ncols``) of columns holding any nonzero."""
    return np.diff(a.indptr) > 0


def nonempty_rows(a: SparseMatrix) -> np.ndarray:
    """Boolean mask (length ``nrows``) of rows holding any nonzero."""
    mask = np.zeros(a.nrows, dtype=bool)
    if a.nnz:
        mask[a.rowidx] = True
    return mask


def mask_columns(a: SparseMatrix, keep) -> SparseMatrix:
    """Drop every entry outside the ``keep`` columns; shape is preserved.

    ``keep`` is a boolean mask of length ``ncols``.  Unlike
    :func:`col_select` the result keeps the original width with the
    dropped columns empty — the sparsity-aware communication layer ships
    these filtered tiles so receivers can multiply them in place.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape[0] != a.ncols:
        raise ShapeError(
            f"column mask length {keep.shape[0]} != ncols {a.ncols}"
        )
    counts = np.diff(a.indptr) * keep
    indptr = np.concatenate(
        (np.zeros(1, dtype=INDEX_DTYPE), np.cumsum(counts, dtype=INDEX_DTYPE))
    )
    entry_keep = np.repeat(keep, np.diff(a.indptr))
    return SparseMatrix(
        a.nrows, a.ncols, indptr, a.rowidx[entry_keep], a.values[entry_keep],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def mask_rows(a: SparseMatrix, keep) -> SparseMatrix:
    """Drop every entry outside the ``keep`` rows; shape is preserved.

    ``keep`` is a boolean mask of length ``nrows``.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape[0] != a.nrows:
        raise ShapeError(f"row mask length {keep.shape[0]} != nrows {a.nrows}")
    entry_keep = keep[a.rowidx] if a.nnz else np.zeros(0, dtype=bool)
    csum = np.concatenate(
        (np.zeros(1, dtype=INDEX_DTYPE), np.cumsum(entry_keep, dtype=INDEX_DTYPE))
    )
    indptr = csum[a.indptr]
    return SparseMatrix(
        a.nrows, a.ncols, indptr, a.rowidx[entry_keep], a.values[entry_keep],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def col_split(a: SparseMatrix, nparts: int) -> list[SparseMatrix]:
    """Split into ``nparts`` contiguous column blocks (widths differ by <=1).

    Block ``i`` gets columns ``[bounds[i], bounds[i+1])`` where the first
    ``ncols % nparts`` blocks are one column wider — the standard balanced
    block partition.
    """
    bounds = split_bounds(a.ncols, nparts)
    return [col_slice(a, bounds[i], bounds[i + 1]) for i in range(nparts)]


def split_bounds(n: int, nparts: int) -> np.ndarray:
    """Boundaries of the balanced block partition of ``range(n)``."""
    if nparts <= 0:
        raise ShapeError(f"nparts must be positive, got {nparts}")
    base, extra = divmod(n, nparts)
    sizes = np.full(nparts, base, dtype=INDEX_DTYPE)
    sizes[:extra] += 1
    return np.concatenate(([0], np.cumsum(sizes)))


def col_split_block_cyclic(
    a: SparseMatrix, nparts: int, nblocks_per_part: int
) -> tuple[list[SparseMatrix], list[np.ndarray]]:
    """Block-cyclic column split (paper Fig. 1(i)).

    The columns are first cut into ``nparts * nblocks_per_part`` contiguous
    blocks; part ``i`` receives blocks ``i, i + nparts, i + 2*nparts, ...``.
    For batching, ``nparts = b`` and ``nblocks_per_part = l`` so each batch
    draws one block from the territory of every layer, balancing the
    Merge-Fiber load.

    Returns ``(parts, col_maps)`` where ``col_maps[i]`` lists the original
    column index of every column of part ``i`` — needed to reassemble or to
    interpret batched output.
    """
    total_blocks = nparts * nblocks_per_part
    bounds = split_bounds(a.ncols, total_blocks)
    parts: list[SparseMatrix] = []
    col_maps: list[np.ndarray] = []
    for i in range(nparts):
        block_ids = range(i, total_blocks, nparts)
        cols = np.concatenate(
            [np.arange(bounds[blk], bounds[blk + 1], dtype=INDEX_DTYPE) for blk in block_ids]
        ) if total_blocks else np.empty(0, dtype=INDEX_DTYPE)
        parts.append(col_select(a, cols))
        col_maps.append(cols)
    return parts, col_maps


def col_concat(parts) -> SparseMatrix:
    """Concatenate matrices side by side (Alg. 4 line 7, ColConcat)."""
    parts = list(parts)
    if not parts:
        raise ShapeError("cannot concatenate zero matrices")
    nrows = parts[0].nrows
    if any(p.nrows != nrows for p in parts):
        raise ShapeError("all parts must have the same number of rows")
    ncols = sum(p.ncols for p in parts)
    indptr = np.zeros(ncols + 1, dtype=INDEX_DTYPE)
    pos = 0
    offset = 0
    for p in parts:
        indptr[pos + 1 : pos + p.ncols + 1] = p.indptr[1:] + offset
        pos += p.ncols
        offset += p.nnz
    rowidx = np.concatenate([p.rowidx for p in parts]) if parts else np.empty(0)
    values = np.concatenate([p.values for p in parts]) if parts else np.empty(0)
    return SparseMatrix(
        nrows, ncols, indptr, rowidx, values,
        sorted_within_columns=all(p.sorted_within_columns for p in parts),
        validate=False,
    )


def hstack_interleave_block_cyclic(
    parts, col_maps, ncols: int
) -> SparseMatrix:
    """Reassemble the output of a block-cyclic split into original order.

    ``parts[i]`` holds the columns listed in ``col_maps[i]``; the result has
    ``ncols`` columns with every column returned to its original position.
    """
    parts = list(parts)
    if len(parts) != len(col_maps):
        raise ShapeError("parts and col_maps must have equal length")
    wide = col_concat(parts)
    all_cols = np.concatenate([np.asarray(m, dtype=INDEX_DTYPE) for m in col_maps]) \
        if col_maps else np.empty(0, dtype=INDEX_DTYPE)
    if wide.ncols != all_cols.shape[0]:
        raise ShapeError(
            f"col_maps cover {all_cols.shape[0]} columns but parts have {wide.ncols}"
        )
    # position of original column j inside `wide`
    inverse = np.empty(ncols, dtype=INDEX_DTYPE)
    inverse.fill(-1)
    inverse[all_cols] = np.arange(all_cols.shape[0], dtype=INDEX_DTYPE)
    if np.any(inverse < 0):
        raise ShapeError("col_maps do not cover all output columns")
    return col_select(wide, inverse)


def hadamard(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Elementwise product on the intersection of the sparsity patterns.

    Used by the masked triangle-count formulation: only coordinates present
    in *both* operands survive, with values multiplied.
    """
    if a.shape != b.shape:
        raise ShapeError(f"hadamard shape mismatch: {a.shape} vs {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return SparseMatrix.empty(a.nrows, a.ncols)
    scale = np.int64(max(a.nrows, 1))
    ka = a.col_indices() * scale + a.rowidx
    kb = b.col_indices() * scale + b.rowidx
    oa = np.argsort(ka, kind="stable")
    ob = np.argsort(kb, kind="stable")
    common, ia, ib = np.intersect1d(
        ka[oa], kb[ob], assume_unique=True, return_indices=True
    )
    rows = common % scale
    cols = common // scale
    vals = a.values[oa][ia] * b.values[ob][ib]
    return SparseMatrix.from_coo(a.nrows, a.ncols, rows, cols, vals, sum_duplicates=False)


def spmv(a: SparseMatrix, x) -> np.ndarray:
    """Sparse matrix × dense vector: ``y = A @ x`` (length ``nrows``).

    The workhorse of iterative solvers and PageRank; fully vectorised via
    a scatter-add over the stored entries.
    """
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.shape != (a.ncols,):
        raise ShapeError(f"vector has shape {x.shape}, expected ({a.ncols},)")
    y = np.zeros(a.nrows, dtype=VALUE_DTYPE)
    if a.nnz:
        np.add.at(y, a.rowidx, a.values * x[a.col_indices()])
    return y


def diagonal(a: SparseMatrix) -> np.ndarray:
    """Dense vector of the main diagonal (zeros where absent)."""
    n = min(a.nrows, a.ncols)
    out = np.zeros(n, dtype=VALUE_DTYPE)
    cols = a.col_indices()
    on_diag = (a.rowidx == cols) & (a.rowidx < n)
    out[a.rowidx[on_diag]] = a.values[on_diag]
    return out


def column_sums(a: SparseMatrix) -> np.ndarray:
    """Per-column value sums (length ``ncols``)."""
    out = np.zeros(a.ncols, dtype=VALUE_DTYPE)
    if a.nnz:
        np.add.at(out, a.col_indices(), a.values)
    return out


# --------------------------------------------------------------------- #
# tile extraction (grid distribution)
# --------------------------------------------------------------------- #

def submatrix(
    a: SparseMatrix, row_start: int, row_stop: int, col_start: int, col_stop: int
) -> SparseMatrix:
    """Extract ``A[row_start:row_stop, col_start:col_stop]`` with local indices."""
    if not (0 <= row_start <= row_stop <= a.nrows):
        raise ShapeError(f"row range [{row_start}, {row_stop}) invalid for nrows={a.nrows}")
    sliced = col_slice(a, col_start, col_stop)
    keep = (sliced.rowidx >= row_start) & (sliced.rowidx < row_stop)
    csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
    indptr = csum[sliced.indptr]
    return SparseMatrix(
        row_stop - row_start,
        col_stop - col_start,
        indptr,
        sliced.rowidx[keep] - row_start,
        sliced.values[keep],
        sorted_within_columns=sliced.sorted_within_columns,
        validate=False,
    )


# --------------------------------------------------------------------- #
# permutation (load balancing)
# --------------------------------------------------------------------- #

def permute(
    a: SparseMatrix,
    row_perm=None,
    col_perm=None,
) -> SparseMatrix:
    """Apply row/column permutations: ``B[p[i], q[j]] = A[i, j]``.

    ``row_perm[i]`` is the new index of old row ``i`` (same for columns);
    ``None`` leaves that dimension untouched.  CombBLAS/HipMCL apply a
    random symmetric permutation before distributing skewed matrices so
    that block distributions become load balanced — the technique the
    ``bench_ablation_imbalance`` experiment measures.
    """
    rows, cols, vals = a.to_coo()
    if row_perm is not None:
        row_perm = np.asarray(row_perm, dtype=INDEX_DTYPE)
        if row_perm.shape != (a.nrows,) or (
            np.sort(row_perm) != np.arange(a.nrows)
        ).any():
            raise ShapeError("row_perm must be a permutation of range(nrows)")
        rows = row_perm[rows]
    if col_perm is not None:
        col_perm = np.asarray(col_perm, dtype=INDEX_DTYPE)
        if col_perm.shape != (a.ncols,) or (
            np.sort(col_perm) != np.arange(a.ncols)
        ).any():
            raise ShapeError("col_perm must be a permutation of range(ncols)")
        cols = col_perm[cols]
    return SparseMatrix.from_coo(a.nrows, a.ncols, rows, cols, vals,
                                 sum_duplicates=False)


def random_symmetric_permutation(a: SparseMatrix, seed=None) -> tuple[SparseMatrix, np.ndarray]:
    """Apply one random permutation to both dimensions of a square matrix.

    Returns ``(permuted, perm)``; spectra, products and clustering are
    preserved up to relabelling, but block distributions of skewed
    matrices become balanced in expectation.
    """
    if a.nrows != a.ncols:
        raise ShapeError("symmetric permutation requires a square matrix")
    from ..utils.rng import as_rng

    rng = as_rng(seed)
    perm = rng.permutation(a.nrows).astype(INDEX_DTYPE)
    return permute(a, perm, perm), perm


# --------------------------------------------------------------------- #
# pruning (the per-batch post-processing of HipMCL)
# --------------------------------------------------------------------- #

def prune_threshold(a: SparseMatrix, threshold: float) -> SparseMatrix:
    """Drop entries with ``|value| < threshold``."""
    keep = np.abs(a.values) >= threshold
    csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
    indptr = csum[a.indptr]
    return SparseMatrix(
        a.nrows, a.ncols, indptr, a.rowidx[keep], a.values[keep],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def prune_topk_per_column(a: SparseMatrix, k: int) -> SparseMatrix:
    """Keep the ``k`` largest-magnitude entries of every column.

    This is the Markov-clustering "selection" prune the paper cites as the
    reason batching suffices: each output batch is pruned immediately, so
    the full dense-ish product never has to exist at once.  Ties are broken
    toward smaller row indices for determinism.
    """
    if k < 0:
        raise ShapeError(f"k must be non-negative, got {k}")
    counts = np.diff(a.indptr)
    if a.nnz == 0 or k >= int(counts.max(initial=0)):
        return a
    keep_mask = np.zeros(a.nnz, dtype=bool)
    for j in range(a.ncols):
        lo, hi = int(a.indptr[j]), int(a.indptr[j + 1])
        width = hi - lo
        if width <= k:
            keep_mask[lo:hi] = True
            continue
        if k == 0:
            continue
        mag = np.abs(a.values[lo:hi])
        # stable selection: order by (-magnitude, row) and keep first k
        order = np.lexsort((a.rowidx[lo:hi], -mag))
        keep_mask[lo + order[:k]] = True
    csum = np.concatenate(([0], np.cumsum(keep_mask, dtype=INDEX_DTYPE)))
    indptr = csum[a.indptr]
    return SparseMatrix(
        a.nrows, a.ncols, indptr, a.rowidx[keep_mask], a.values[keep_mask],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )
