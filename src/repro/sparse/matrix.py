"""The CSC sparse-matrix container used throughout the library.

The paper's local kernels (Sec. IV-D) exploit one structural degree of
freedom: whether row indices *within each column* are sorted.  The
sort-free hash SpGEMM and hash merge emit unsorted columns; the final
Merge-Fiber output is sorted.  :class:`SparseMatrix` therefore carries an
explicit ``sorted_within_columns`` flag, and every kernel documents what it
requires and what it produces.

Invariants (always enforced at construction unless ``validate=False``):

* ``indptr`` has length ``ncols + 1``, starts at 0, is non-decreasing and
  ends at ``nnz``;
* ``rowidx`` entries are in ``[0, nrows)``;
* there are **no duplicate** ``(row, col)`` coordinates — accumulation has
  already happened (this is what distinguishes a matrix from an unmerged
  pile of partial products);
* if ``sorted_within_columns`` is True, row indices are strictly increasing
  within each column.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError, ShapeError

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64

#: bytes per stored nonzero used in memory accounting: two 8-byte indices
#: plus one 8-byte value — the figure the paper uses (r = 24, Sec. IV-A).
BYTES_PER_NONZERO = 24


class SparseMatrix:
    """Compressed-sparse-column matrix over float64 (or any semiring value
    stored as float64 — the kernels only use ``+`` and ``*`` through a
    pluggable semiring, see :mod:`repro.sparse.spgemm`).

    Parameters
    ----------
    nrows, ncols:
        Matrix dimensions.
    indptr, rowidx, values:
        Standard CSC arrays. Copied only if they need dtype conversion.
    sorted_within_columns:
        Whether row indices are ascending within each column.
    validate:
        Verify all invariants (O(nnz)); disable only on hot internal paths
        that construct provably-valid arrays.
    """

    __slots__ = ("nrows", "ncols", "indptr", "rowidx", "values", "sorted_within_columns")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        indptr,
        rowidx,
        values,
        *,
        sorted_within_columns: bool = True,
        validate: bool = True,
    ) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.rowidx = np.ascontiguousarray(rowidx, dtype=INDEX_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        self.sorted_within_columns = bool(sorted_within_columns)
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_coo(
        cls,
        nrows: int,
        ncols: int,
        rows,
        cols,
        vals,
        *,
        sum_duplicates: bool = True,
    ) -> "SparseMatrix":
        """Build from COO triples, summing duplicates (sorted output)."""
        from .coo import coo_to_csc_arrays

        indptr, rowidx, values = coo_to_csc_arrays(
            nrows, ncols, rows, cols, vals, sum_duplicates=sum_duplicates
        )
        return cls(nrows, ncols, indptr, rowidx, values, sorted_within_columns=True)

    @classmethod
    def empty(cls, nrows: int, ncols: int) -> "SparseMatrix":
        """All-zero matrix of the given shape."""
        return cls(
            nrows,
            ncols,
            np.zeros(ncols + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
            validate=False,
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return int(self.rowidx.shape[0])

    @property
    def nbytes(self) -> int:
        """Memory accounting at the paper's r = 24 bytes per nonzero.

        Part of the uniform ``nbytes()`` protocol every byte-carrying
        object in the library exposes (see :func:`repro.mem.nbytes_of`):
        whatever a :class:`~repro.mem.MemoryLedger` charges is this
        value, so measured high-water marks and the Table III model
        (also counted at ``r`` bytes/nonzero) stay directly comparable.
        """
        return self.nnz * BYTES_PER_NONZERO

    def col_nnz(self) -> np.ndarray:
        """Number of stored entries in each column (length ``ncols``)."""
        return np.diff(self.indptr)

    def col_indices(self) -> np.ndarray:
        """Column index of every stored entry, expanded from ``indptr``."""
        return np.repeat(
            np.arange(self.ncols, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (row indices, values) of column ``j``."""
        if not 0 <= j < self.ncols:
            raise IndexError(f"column {j} out of range [0, {self.ncols})")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.rowidx[lo:hi], self.values[lo:hi]

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (rows, cols, vals) arrays in storage order."""
        return self.rowidx.copy(), self.col_indices(), self.values.copy()

    def to_dense(self) -> np.ndarray:
        """Dense ndarray (tests and tiny examples only)."""
        out = np.zeros((self.nrows, self.ncols), dtype=VALUE_DTYPE)
        out[self.rowidx, self.col_indices()] = self.values
        return out

    def sort_indices(self) -> "SparseMatrix":
        """Return an equivalent matrix with rows sorted within columns.

        No-op (returns ``self``) when already sorted: sortedness is the
        canonical form, so idempotence here keeps hot paths cheap.
        """
        if self.sorted_within_columns:
            return self
        rowidx = self.rowidx.copy()
        values = self.values.copy()
        for j in range(self.ncols):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            if hi - lo > 1:
                order = np.argsort(rowidx[lo:hi], kind="stable")
                rowidx[lo:hi] = rowidx[lo:hi][order]
                values[lo:hi] = values[lo:hi][order]
        return SparseMatrix(
            self.nrows, self.ncols, self.indptr, rowidx, values,
            sorted_within_columns=True, validate=False,
        )

    def canonical(self) -> "SparseMatrix":
        """Sorted, zero-free canonical form (for comparisons)."""
        m = self.sort_indices()
        keep = m.values != 0.0
        if keep.all():
            return m
        csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
        indptr = csum[m.indptr]
        return SparseMatrix(
            m.nrows, m.ncols, indptr, m.rowidx[keep], m.values[keep],
            sorted_within_columns=True, validate=False,
        )

    # ------------------------------------------------------------------ #
    # comparison / repr
    # ------------------------------------------------------------------ #

    def allclose(self, other: "SparseMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Numerically compare two matrices regardless of storage order."""
        if self.shape != other.shape:
            return False
        a, b = self.canonical(), other.canonical()
        if a.nnz != b.nnz:
            return False
        return (
            np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.rowidx, b.rowidx)
            and np.allclose(a.values, b.values, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:
        flag = "sorted" if self.sorted_within_columns else "unsorted"
        return (
            f"SparseMatrix({self.nrows}x{self.ncols}, nnz={self.nnz}, {flag})"
        )

    # ------------------------------------------------------------------ #
    # operator sugar
    # ------------------------------------------------------------------ #

    def __matmul__(self, other: "SparseMatrix") -> "SparseMatrix":
        from .spgemm import multiply

        if not isinstance(other, SparseMatrix):
            return NotImplemented
        if self.ncols != other.nrows:
            raise ShapeError(
                f"cannot multiply {self.nrows}x{self.ncols} by {other.nrows}x{other.ncols}"
            )
        return multiply(self, other)

    @property
    def T(self) -> "SparseMatrix":
        from .ops import transpose

        return transpose(self)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if self.nrows < 0 or self.ncols < 0:
            raise FormatError(f"negative shape {self.shape}")
        if self.indptr.shape != (self.ncols + 1,):
            raise FormatError(
                f"indptr length {self.indptr.shape[0]} != ncols+1 = {self.ncols + 1}"
            )
        if self.indptr[0] != 0:
            raise FormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.rowidx.shape != (nnz,) or self.values.shape != (nnz,):
            raise FormatError(
                f"array lengths (rowidx={self.rowidx.shape[0]}, "
                f"values={self.values.shape[0]}) != indptr[-1]={nnz}"
            )
        if nnz:
            if self.rowidx.min() < 0 or self.rowidx.max() >= self.nrows:
                raise FormatError("row index out of range")
        # duplicate / sortedness check per column, vectorised: entries within
        # a column must have distinct rows; if sorted flag set, increasing.
        if nnz:
            cols = self.col_indices()
            key = cols * np.int64(max(self.nrows, 1)) + self.rowidx
            if np.unique(key).shape[0] != nnz:
                raise FormatError("duplicate (row, col) coordinate")
            if self.sorted_within_columns:
                same_col = cols[1:] == cols[:-1]
                if np.any(same_col & (np.diff(self.rowidx) <= 0)):
                    raise FormatError(
                        "sorted_within_columns set but a column is unsorted"
                    )
