"""DCSC — doubly-compressed sparse columns (Buluç & Gilbert).

At extreme scale the per-process tiles of a 2D/3D distribution become
*hypersparse*: ``nnz << ncols``, so CSC's dense ``indptr`` array (one
entry per column) dominates storage and bandwidth.  CombBLAS — the
substrate of the paper's implementation — stores tiles in DCSC, which
compresses the column pointers to the columns that actually have
entries:

* ``jc``   — sorted indices of the non-empty columns (length ``nzc``);
* ``cp``   — entry offsets per non-empty column (length ``nzc + 1``);
* ``ir``   — row indices (length ``nnz``);
* ``num``  — values (length ``nnz``).

Total storage is ``O(nnz + nzc)`` with ``nzc <= nnz`` — independent of
the matrix dimension, which is what justifies the simulator's
nnz-proportional wire accounting (see
:mod:`repro.simmpi.serialization`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from .matrix import INDEX_DTYPE, SparseMatrix


@dataclass(frozen=True)
class DcscMatrix:
    """A matrix in doubly-compressed column storage."""

    nrows: int
    ncols: int
    jc: np.ndarray   # non-empty column indices, sorted
    cp: np.ndarray   # offsets into ir/num per non-empty column
    ir: np.ndarray   # row indices
    num: np.ndarray  # values

    @property
    def nnz(self) -> int:
        return int(self.ir.shape[0])

    @property
    def nzc(self) -> int:
        """Number of non-empty columns."""
        return int(self.jc.shape[0])

    @property
    def nbytes(self) -> int:
        """Actual storage bytes — O(nnz + nzc), dimension-independent.

        Same uniform ``nbytes()`` protocol as
        :attr:`~repro.sparse.matrix.SparseMatrix.nbytes`
        (:func:`repro.mem.nbytes_of` resolves it), but counting the real
        DCSC arrays rather than the flat r-per-nonzero model — the
        whole point of doubly-compressed storage is that these differ.
        """
        return int(
            self.jc.nbytes + self.cp.nbytes + self.ir.nbytes + self.num.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"DcscMatrix({self.nrows}x{self.ncols}, nnz={self.nnz}, "
            f"nzc={self.nzc})"
        )


def to_dcsc(a: SparseMatrix) -> DcscMatrix:
    """Compress a CSC matrix to DCSC (lossless)."""
    counts = np.diff(a.indptr)
    jc = np.flatnonzero(counts).astype(INDEX_DTYPE)
    cp = np.concatenate(
        ([0], np.cumsum(counts[jc], dtype=INDEX_DTYPE))
    )
    return DcscMatrix(
        nrows=a.nrows,
        ncols=a.ncols,
        jc=jc,
        cp=cp,
        ir=a.rowidx.copy(),
        num=a.values.copy(),
    )


def from_dcsc(d: DcscMatrix, *, sorted_within_columns: bool = True) -> SparseMatrix:
    """Expand DCSC back to CSC."""
    if d.jc.shape[0] and (d.jc.min() < 0 or d.jc.max() >= d.ncols):
        raise FormatError("DCSC column index out of range")
    if d.cp.shape != (d.jc.shape[0] + 1,):
        raise FormatError("DCSC cp length must be nzc + 1")
    indptr = np.zeros(d.ncols + 1, dtype=INDEX_DTYPE)
    counts = np.diff(d.cp)
    indptr[d.jc + 1] = counts
    np.cumsum(indptr, out=indptr)
    return SparseMatrix(
        d.nrows, d.ncols, indptr, d.ir, d.num,
        sorted_within_columns=sorted_within_columns,
    )


def dcsc_saving(a: SparseMatrix) -> float:
    """Storage ratio CSC/DCSC — how much doubly-compressing this matrix
    saves.  >> 1 for hypersparse tiles (the extreme-scale regime), ~1 for
    tiles with most columns occupied."""
    csc_bytes = a.indptr.nbytes + a.rowidx.nbytes + a.values.nbytes
    d = to_dcsc(a)
    return csc_bytes / d.nbytes if d.nbytes else float("inf")
