"""Matrix persistence: MatrixMarket text format and a fast ``.npz`` format.

The paper's inputs (IMG protein-similarity networks, SuiteSparse matrices)
ship as MatrixMarket files; the reader here handles the ``coordinate``
variants we need (real / integer / pattern, general / symmetric).  The
``.npz`` format stores the CSC arrays directly for fast reload of generated
test matrices.
"""

from __future__ import annotations

import io as _io
import os

import numpy as np

from ..errors import FormatError
from .matrix import SparseMatrix


def save_matrix(path, a: SparseMatrix) -> None:
    """Save in the native ``.npz`` format (exact round-trip).

    Crash-safe: the archive is written to a ``*.tmp`` sibling and moved
    into place with an atomic ``os.replace``, so a killed writer (spill /
    checkpoint batches under fault injection) can never leave a truncated
    file at ``path`` that a later resume would trust.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"  # np.savez's extension rule, kept for tmp-file writes
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            nrows=np.int64(a.nrows),
            ncols=np.int64(a.ncols),
            indptr=a.indptr,
            rowidx=a.rowidx,
            values=a.values,
            sorted_within_columns=np.bool_(a.sorted_within_columns),
        )
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_matrix(path) -> SparseMatrix:
    """Load a matrix saved with :func:`save_matrix`."""
    with np.load(path) as z:
        return SparseMatrix(
            int(z["nrows"]),
            int(z["ncols"]),
            z["indptr"],
            z["rowidx"],
            z["values"],
            sorted_within_columns=bool(z["sorted_within_columns"]),
        )


def save_matrix_market(path, a: SparseMatrix, *, comment: str = "") -> None:
    """Write a ``coordinate real general`` MatrixMarket file (1-based)."""
    rows, cols, vals = a.to_coo()
    with open(path, "w", encoding="ascii") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{a.nrows} {a.ncols} {a.nnz}\n")
        for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            fh.write(f"{r + 1} {c + 1} {v!r}\n")


def load_matrix_market(path) -> SparseMatrix:
    """Read a MatrixMarket ``coordinate`` file into a :class:`SparseMatrix`.

    Supports ``real``/``integer``/``pattern`` fields and
    ``general``/``symmetric`` symmetry.  Pattern entries get value 1.0;
    symmetric files are expanded to full storage.  Paths ending in
    ``.gz`` are decompressed transparently (SuiteSparse downloads ship
    gzipped).
    """
    if isinstance(path, (str, os.PathLike)):
        if str(path).endswith(".gz"):
            import gzip

            with gzip.open(path, "rt", encoding="ascii") as fh:
                return _parse_matrix_market(fh)
        with open(path, "r", encoding="ascii") as fh:
            return _parse_matrix_market(fh)
    return _parse_matrix_market(path)


def _parse_matrix_market(fh) -> SparseMatrix:
    header = fh.readline()
    tokens = header.strip().lower().split()
    if len(tokens) < 5 or tokens[0] != "%%matrixmarket" or tokens[1] != "matrix":
        raise FormatError(f"not a MatrixMarket header: {header.strip()!r}")
    fmt, field, symmetry = tokens[2], tokens[3], tokens[4]
    if fmt != "coordinate":
        raise FormatError(f"only 'coordinate' format supported, got {fmt!r}")
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    line = fh.readline()
    while line and line.lstrip().startswith("%"):
        line = fh.readline()
    if not line:
        raise FormatError("missing size line")
    try:
        nrows, ncols, nnz = (int(t) for t in line.split())
    except ValueError as exc:
        raise FormatError(f"bad size line: {line.strip()!r}") from exc

    body = fh.read()
    data = np.loadtxt(
        _io.StringIO(body), ndmin=2, dtype=np.float64,
    ) if body.strip() else np.empty((0, 3 if field != "pattern" else 2))
    if data.shape[0] != nnz:
        raise FormatError(f"expected {nnz} entries, found {data.shape[0]}")
    if nnz == 0:
        return SparseMatrix.empty(nrows, ncols)
    rows = data[:, 0].astype(np.int64) - 1
    cols = data[:, 1].astype(np.int64) - 1
    if field == "pattern":
        vals = np.ones(nnz, dtype=np.float64)
    else:
        if data.shape[1] < 3:
            raise FormatError("real/integer file missing value column")
        vals = data[:, 2]
    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, data[:, 0].astype(np.int64)[off] - 1])
        vals = np.concatenate([vals, vals[off]])
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals)
