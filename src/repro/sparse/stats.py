"""Structural statistics of sparse matrices and their distributions.

The symbolic step (Alg. 3) works with per-process *maxima*, so its batch
count responds to load imbalance: "in comparison to perfectly-balanced
computation, SYMBOLIC3D will estimate more batches for load-imbalanced
cases" (paper Sec. IV-A).  This module quantifies that imbalance — degree
skew of a matrix, and the max/mean nnz ratio of its tiles under a given
grid — feeding the imbalance ablation bench and the planner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.distribution import extract_a_tile, extract_b_tile
from ..grid.grid3d import ProcGrid3D
from .matrix import SparseMatrix


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree (per-row or per-column nnz) distribution."""

    mean: float
    median: float
    maximum: int
    skew_ratio: float  # max / mean — 1.0 for perfectly regular

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "DegreeStats":
        if counts.size == 0 or counts.sum() == 0:
            return cls(0.0, 0.0, 0, 1.0)
        mean = float(counts.mean())
        return cls(
            mean=mean,
            median=float(np.median(counts)),
            maximum=int(counts.max()),
            skew_ratio=float(counts.max() / mean) if mean else 1.0,
        )


def degree_stats(a: SparseMatrix, axis: str = "column") -> DegreeStats:
    """Degree distribution along ``"column"`` or ``"row"``."""
    if axis == "column":
        counts = np.diff(a.indptr)
    elif axis == "row":
        counts = np.bincount(a.rowidx, minlength=a.nrows)
    else:
        raise ValueError(f"axis must be 'row' or 'column', got {axis!r}")
    return DegreeStats.from_counts(np.asarray(counts))


def tile_imbalance(
    a: SparseMatrix, grid: ProcGrid3D, *, operand: str = "A"
) -> float:
    """Max/mean nnz over the matrix's tiles under the grid's distribution.

    1.0 means perfectly balanced; Alg. 3's batch count scales with this
    factor because it budgets for the fullest process.
    """
    extract = extract_a_tile if operand == "A" else extract_b_tile
    counts = np.array(
        [extract(a, grid, rank).nnz for rank in range(grid.nprocs)],
        dtype=float,
    )
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)


def nnz_histogram(a: SparseMatrix, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-column nnz (counts, bin edges)."""
    return np.histogram(np.diff(a.indptr), bins=bins)
