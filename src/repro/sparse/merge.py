"""k-way merge of partial results — the Merge-Layer / Merge-Fiber kernels.

Distributed SpGEMM repeatedly faces the same local problem: given several
same-shaped sparse matrices whose coordinates overlap (partial products
from different SUMMA stages, or fiber exchange pieces from different
layers), add coinciding entries.  The paper replaces the prior heap merge
with a sort-free hash merge and reports an order-of-magnitude local
speedup (Table VII); both are implemented here, plus the vectorised
grouped merge used as this reproduction's production default.

All three produce numerically identical results; they differ in input
requirements (heap needs sorted columns) and output ordering guarantees.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import FormatError, ShapeError
from .matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from .semiring import PLUS_TIMES, get_semiring
from .spgemm.accumulators import HashAccumulator


def _check_parts(parts) -> tuple[int, int]:
    parts = list(parts)
    if not parts:
        raise ShapeError("cannot merge zero matrices")
    nrows, ncols = parts[0].shape
    for p in parts:
        if p.shape != (nrows, ncols):
            raise ShapeError(
                f"merge shape mismatch: {p.shape} vs {(nrows, ncols)}"
            )
    return nrows, ncols


def merge_hash(parts, semiring=PLUS_TIMES) -> SparseMatrix:
    """Sort-free hash merge (this paper, Sec. IV-D).

    Column ``j`` of the output is accumulated from column ``j`` of every
    part in a hash table; inputs may be unsorted and the output columns are
    emitted in insertion order (unsorted).
    """
    parts = list(parts)
    nrows, ncols = _check_parts(parts)
    semiring = get_semiring(semiring)
    acc = HashAccumulator(semiring)
    out_rows: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    counts = np.zeros(ncols, dtype=INDEX_DTYPE)
    for j in range(ncols):
        for p in parts:
            lo, hi = int(p.indptr[j]), int(p.indptr[j + 1])
            if lo != hi:
                acc.scatter(p.rowidx[lo:hi], p.values[lo:hi])
        rows, vals = acc.gather()
        counts[j] = rows.shape[0]
        if rows.shape[0]:
            out_rows.append(rows)
            out_vals.append(vals)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    rowidx = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=INDEX_DTYPE)
    values = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=VALUE_DTYPE)
    return SparseMatrix(
        nrows, ncols, indptr, rowidx, values,
        sorted_within_columns=False, validate=False,
    )


def merge_heap(parts, semiring=PLUS_TIMES) -> SparseMatrix:
    """Sorted heap merge (prior work [13]).

    Requires every part sorted within columns; performs a k-way merge per
    column with a binary heap, paying O(log k) per entry — the cost the
    hash merge avoids.  Output is sorted.
    """
    parts = list(parts)
    nrows, ncols = _check_parts(parts)
    for p in parts:
        if not p.sorted_within_columns:
            raise FormatError("heap merge requires sorted inputs")
    semiring = get_semiring(semiring)
    add = semiring.add
    out_rows: list[int] = []
    out_vals: list[float] = []
    counts = np.zeros(ncols, dtype=INDEX_DTYPE)
    for j in range(ncols):
        heap: list[tuple[int, int, int]] = []
        bounds: list[int] = []
        for src, p in enumerate(parts):
            lo, hi = int(p.indptr[j]), int(p.indptr[j + 1])
            bounds.append(hi)
            if lo != hi:
                heap.append((int(p.rowidx[lo]), src, lo))
        heapq.heapify(heap)
        before = len(out_rows)
        cur_row, cur_val = -1, 0.0
        while heap:
            row, src, cursor = heapq.heappop(heap)
            val = float(parts[src].values[cursor])
            if row == cur_row:
                cur_val = float(add(cur_val, val))
            else:
                if cur_row >= 0:
                    out_rows.append(cur_row)
                    out_vals.append(cur_val)
                cur_row, cur_val = row, val
            cursor += 1
            if cursor < bounds[src]:
                heapq.heappush(
                    heap, (int(parts[src].rowidx[cursor]), src, cursor)
                )
        if cur_row >= 0:
            out_rows.append(cur_row)
            out_vals.append(cur_val)
        counts[j] = len(out_rows) - before
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return SparseMatrix(
        nrows,
        ncols,
        indptr,
        np.array(out_rows, dtype=INDEX_DTYPE),
        np.array(out_vals, dtype=VALUE_DTYPE),
        sorted_within_columns=True,
        validate=False,
    )


def merge_grouped(parts, semiring=PLUS_TIMES) -> SparseMatrix:
    """Vectorised merge: concatenate all COO entries, one key sort, one
    segmented reduction.  Accepts unsorted inputs; emits sorted output.
    The production default of this reproduction."""
    parts = list(parts)
    nrows, ncols = _check_parts(parts)
    semiring = get_semiring(semiring)
    total = sum(p.nnz for p in parts)
    if total == 0:
        return SparseMatrix.empty(nrows, ncols)
    rows = np.concatenate([p.rowidx for p in parts])
    cols = np.concatenate([p.col_indices() for p in parts])
    vals = np.concatenate([p.values for p in parts])
    key = cols * np.int64(max(nrows, 1)) + rows
    order = np.argsort(key, kind="stable")
    key = key[order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    merged_vals = semiring.reduce_segments(vals[order], starts).astype(
        VALUE_DTYPE, copy=False
    )
    merged_rows = rows[order][starts]
    merged_cols = cols[order][starts]
    col_counts = np.bincount(merged_cols, minlength=ncols).astype(INDEX_DTYPE)
    indptr = np.concatenate(([0], np.cumsum(col_counts)))
    return SparseMatrix(
        nrows, ncols, indptr, merged_rows, merged_vals,
        sorted_within_columns=True, validate=False,
    )


_MERGE_METHODS = {
    "hash": merge_hash,
    "heap": merge_heap,
    "grouped": merge_grouped,
}


def merge_partials(parts, method="grouped", semiring=PLUS_TIMES) -> SparseMatrix:
    """Merge with a named method; single-part input is passed through."""
    parts = list(parts)
    if len(parts) == 1:
        return parts[0]
    try:
        fn = _MERGE_METHODS[method] if isinstance(method, str) else method
    except KeyError:
        raise ValueError(
            f"unknown merge method {method!r}; available: {sorted(_MERGE_METHODS)}"
        ) from None
    return fn(parts, semiring)
