"""Elementwise and reduction operations (GraphBLAS-flavoured).

The applications built on SpGEMM constantly need small elementwise
helpers around the multiplies — scaled sums of matrices, filtering by a
predicate, row/column reductions with a semiring's add.  Collecting them
here keeps the app code at the level of its mathematics.

All operations are vectorised over the COO expansion and return canonical
(sorted, duplicate-free) matrices.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ShapeError
from .matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix
from .merge import merge_grouped
from .semiring import PLUS_TIMES, Semiring, get_semiring


def ewise_add(
    a: SparseMatrix,
    b: SparseMatrix,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    semiring=PLUS_TIMES,
) -> SparseMatrix:
    """``alpha * A (+) beta * B`` over the union pattern.

    The combination uses the semiring's add (ordinary ``+`` by default;
    ``MIN_PLUS`` gives elementwise min over the union — the relaxation
    step of shortest-path iterations).
    """
    if a.shape != b.shape:
        raise ShapeError(f"ewise_add shape mismatch: {a.shape} vs {b.shape}")
    semiring = get_semiring(semiring)
    scaled_a = a if alpha == 1.0 else SparseMatrix(
        a.nrows, a.ncols, a.indptr, a.rowidx, a.values * alpha,
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )
    scaled_b = b if beta == 1.0 else SparseMatrix(
        b.nrows, b.ncols, b.indptr, b.rowidx, b.values * beta,
        sorted_within_columns=b.sorted_within_columns, validate=False,
    )
    return merge_grouped([scaled_a, scaled_b], semiring=semiring)


def ewise_mult(
    a: SparseMatrix, b: SparseMatrix, mul: np.ufunc = np.multiply
) -> SparseMatrix:
    """Elementwise ``mul`` over the *intersection* pattern (generalised
    Hadamard product)."""
    if a.shape != b.shape:
        raise ShapeError(f"ewise_mult shape mismatch: {a.shape} vs {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return SparseMatrix.empty(a.nrows, a.ncols)
    scale = np.int64(max(a.nrows, 1))
    ka = a.col_indices() * scale + a.rowidx
    kb = b.col_indices() * scale + b.rowidx
    oa = np.argsort(ka, kind="stable")
    ob = np.argsort(kb, kind="stable")
    common, ia, ib = np.intersect1d(
        ka[oa], kb[ob], assume_unique=True, return_indices=True
    )
    rows = common % scale
    cols = common // scale
    vals = mul(a.values[oa][ia], b.values[ob][ib]).astype(VALUE_DTYPE, copy=False)
    return SparseMatrix.from_coo(
        a.nrows, a.ncols, rows, cols, vals, sum_duplicates=False
    )


def apply(a: SparseMatrix, fn: Callable[[np.ndarray], np.ndarray]) -> SparseMatrix:
    """Apply a vectorised unary function to every stored value.

    Entries mapped to exactly 0.0 are dropped (canonical form), matching
    GraphBLAS ``apply`` followed by ``select(nonzero)``.
    """
    values = np.asarray(fn(a.values), dtype=VALUE_DTYPE)
    if values.shape != a.values.shape:
        raise ShapeError("apply function must preserve the value count")
    out = SparseMatrix(
        a.nrows, a.ncols, a.indptr, a.rowidx, values,
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )
    return out.canonical()


def select(
    a: SparseMatrix,
    predicate: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
) -> SparseMatrix:
    """Keep entries where ``predicate(rows, cols, values)`` is True.

    >>> select(m, lambda r, c, v: v > 0.5)        # value filter
    >>> select(m, lambda r, c, v: r != c)         # drop the diagonal
    """
    rows = a.rowidx
    cols = a.col_indices()
    keep = np.asarray(predicate(rows, cols, a.values), dtype=bool)
    if keep.shape != (a.nnz,):
        raise ShapeError("predicate must return one boolean per entry")
    csum = np.concatenate(([0], np.cumsum(keep, dtype=INDEX_DTYPE)))
    indptr = csum[a.indptr]
    return SparseMatrix(
        a.nrows, a.ncols, indptr, rows[keep], a.values[keep],
        sorted_within_columns=a.sorted_within_columns, validate=False,
    )


def reduce_columns(
    a: SparseMatrix, semiring: Semiring | str = PLUS_TIMES
) -> np.ndarray:
    """Reduce each column with the semiring's add; identity where empty."""
    semiring = get_semiring(semiring)
    out = np.full(a.ncols, semiring.add_identity, dtype=VALUE_DTYPE)
    if a.nnz == 0:
        return out
    if semiring.add is np.add:
        np.add.at(out, a.col_indices(), a.values)
        # columns with no entries stay at the identity (0.0 for plus)
        return out
    # segmented reduce over the (sorted) CSC layout
    sorted_a = a.sort_indices()
    for j in range(a.ncols):
        lo, hi = int(sorted_a.indptr[j]), int(sorted_a.indptr[j + 1])
        if lo != hi:
            out[j] = semiring.add.reduce(sorted_a.values[lo:hi])
    return out


def reduce_rows(
    a: SparseMatrix, semiring: Semiring | str = PLUS_TIMES
) -> np.ndarray:
    """Reduce each row with the semiring's add; identity where empty."""
    from .ops import transpose

    return reduce_columns(transpose(a), semiring)
