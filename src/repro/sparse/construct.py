"""Constructors for :class:`~repro.sparse.matrix.SparseMatrix`."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..utils.rng import as_rng
from .matrix import INDEX_DTYPE, VALUE_DTYPE, SparseMatrix


def zeros(nrows: int, ncols: int) -> SparseMatrix:
    """All-zero matrix."""
    return SparseMatrix.empty(nrows, ncols)


def eye(n: int, value: float = 1.0) -> SparseMatrix:
    """``n x n`` identity scaled by ``value``."""
    idx = np.arange(n, dtype=INDEX_DTYPE)
    return SparseMatrix(
        n,
        n,
        np.arange(n + 1, dtype=INDEX_DTYPE),
        idx,
        np.full(n, value, dtype=VALUE_DTYPE),
        validate=False,
    )


def diag(values) -> SparseMatrix:
    """Square diagonal matrix from a 1-D array of values.

    Explicit zeros on the diagonal are dropped (canonical form).
    """
    values = np.asarray(values, dtype=VALUE_DTYPE)
    n = values.shape[0]
    keep = np.flatnonzero(values != 0.0)
    return SparseMatrix.from_coo(n, n, keep, keep, values[keep])


def from_dense(dense) -> SparseMatrix:
    """Sparse matrix from a dense 2-D array (zeros dropped)."""
    dense = np.asarray(dense, dtype=VALUE_DTYPE)
    if dense.ndim != 2:
        raise ShapeError(f"expected 2-D array, got shape {dense.shape}")
    rows, cols = np.nonzero(dense)
    return SparseMatrix.from_coo(
        dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols]
    )


def from_edges(
    nrows: int,
    ncols: int,
    edges,
    *,
    values=None,
    symmetric: bool = False,
) -> SparseMatrix:
    """Matrix from an (m, 2) edge array; duplicate edges sum.

    With ``symmetric=True`` each edge (u, v) also inserts (v, u) — the usual
    adjacency-matrix construction for undirected graphs; requires a square
    shape and skips mirroring self-loops so the diagonal is not doubled.
    """
    edges = np.asarray(edges, dtype=INDEX_DTYPE)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ShapeError(f"edges must have shape (m, 2), got {edges.shape}")
    rows, cols = edges[:, 0], edges[:, 1]
    if values is None:
        vals = np.ones(rows.shape[0], dtype=VALUE_DTYPE)
    else:
        vals = np.asarray(values, dtype=VALUE_DTYPE)
    if symmetric:
        if nrows != ncols:
            raise ShapeError("symmetric construction requires a square shape")
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols_new = np.concatenate([cols, edges[:, 0][off]])
        vals = np.concatenate([vals, vals[off]])
        cols = cols_new
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals)


def random_sparse(
    nrows: int,
    ncols: int,
    density: float | None = None,
    *,
    nnz: int | None = None,
    seed=None,
    values: str = "uniform",
) -> SparseMatrix:
    """Uniform random sparse matrix (Erdős–Rényi sparsity pattern).

    Exactly one of ``density`` / ``nnz`` selects how many *distinct*
    coordinates to draw.  ``values`` is ``"uniform"`` (U(0,1]), ``"ones"``
    or ``"normal"``.
    """
    if (density is None) == (nnz is None):
        raise ValueError("specify exactly one of density / nnz")
    total = nrows * ncols
    if nnz is None:
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        nnz = int(round(density * total))
    if nnz > total:
        raise ValueError(f"requested nnz={nnz} > nrows*ncols={total}")
    rng = as_rng(seed)
    if total == 0 or nnz == 0:
        return SparseMatrix.empty(nrows, ncols)
    # Draw distinct flat coordinates. For low fill, rejection sampling on
    # draws is cheaper than permuting the full index space.
    if nnz > total // 2:
        flat = rng.permutation(total)[:nnz]
    else:
        flat = np.unique(rng.integers(0, total, size=int(nnz * 1.3) + 16))
        while flat.shape[0] < nnz:
            extra = rng.integers(0, total, size=nnz)
            flat = np.unique(np.concatenate([flat, extra]))
        flat = rng.permutation(flat)[:nnz]
    rows, cols = np.divmod(flat, ncols)
    vals = _draw_values(rng, nnz, values)
    return SparseMatrix.from_coo(nrows, ncols, rows, cols, vals)


def _draw_values(rng: np.random.Generator, n: int, kind: str) -> np.ndarray:
    if kind == "uniform":
        # open interval at 0 so no explicit zeros sneak in
        return (1.0 - rng.random(n)).astype(VALUE_DTYPE)
    if kind == "ones":
        return np.ones(n, dtype=VALUE_DTYPE)
    if kind == "normal":
        vals = rng.standard_normal(n).astype(VALUE_DTYPE)
        vals[vals == 0.0] = 1.0
        return vals
    raise ValueError(f"unknown value kind {kind!r}")
