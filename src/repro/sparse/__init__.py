"""From-scratch sparse-matrix substrate.

This package implements the local (per-process) sparse machinery the paper's
distributed algorithms sit on: a CSC container (:class:`SparseMatrix`),
constructors, structural ops (transpose, column split/concat, pruning),
Gustavson-style local SpGEMM kernels with pluggable accumulators
(hash / heap / hybrid / SPA / vectorized ESC), symbolic multiplication, and
k-way merge kernels (sort-free hash merge vs. sorted heap merge).

``scipy.sparse`` is deliberately *not* used anywhere in this package; it
serves only as an independent oracle inside the test suite.
"""

from .matrix import SparseMatrix
from .coo import coo_to_csc_arrays, dedup_coo, sort_coo
from .construct import (
    diag,
    eye,
    from_dense,
    from_edges,
    random_sparse,
    zeros,
)
from .ops import (
    col_concat,
    col_slice,
    col_split,
    col_split_block_cyclic,
    hstack_interleave_block_cyclic,
    prune_threshold,
    prune_topk_per_column,
    scale_columns,
    scale_rows,
    transpose,
    tril,
    triu,
)
from .merge import merge_hash, merge_heap, merge_grouped, merge_partials
from .spgemm import (
    KernelSuite,
    get_suite,
    multiply,
    spgemm_esc,
    spgemm_hash,
    spgemm_heap,
    spgemm_hybrid,
    spgemm_reference,
    spgemm_spa,
)
from .spgemm.symbolic import symbolic_flops, symbolic_nnz, symbolic_per_column
from .io import load_matrix, load_matrix_market, save_matrix, save_matrix_market

__all__ = [
    "SparseMatrix",
    "coo_to_csc_arrays",
    "dedup_coo",
    "sort_coo",
    "diag",
    "eye",
    "from_dense",
    "from_edges",
    "random_sparse",
    "zeros",
    "col_concat",
    "col_slice",
    "col_split",
    "col_split_block_cyclic",
    "hstack_interleave_block_cyclic",
    "prune_threshold",
    "prune_topk_per_column",
    "scale_columns",
    "scale_rows",
    "transpose",
    "tril",
    "triu",
    "merge_hash",
    "merge_heap",
    "merge_grouped",
    "merge_partials",
    "KernelSuite",
    "get_suite",
    "multiply",
    "spgemm_esc",
    "spgemm_hash",
    "spgemm_heap",
    "spgemm_hybrid",
    "spgemm_reference",
    "spgemm_spa",
    "symbolic_flops",
    "symbolic_nnz",
    "symbolic_per_column",
    "load_matrix",
    "load_matrix_market",
    "save_matrix",
    "save_matrix_market",
]
