"""Kronecker product of sparse matrices.

The Kronecker product is the generative core of the R-MAT/Graph500 model
(an R-MAT graph is a noisy sample of the k-fold Kronecker power of a 2x2
seed) and the standard way to build separable stencil operators
(``kron(I, T) + kron(T, I)`` is the 2D Laplacian).  Fully vectorised:
``nnz(kron(A, B)) = nnz(A) * nnz(B)`` pairs are generated with one outer
expansion.
"""

from __future__ import annotations

import numpy as np

from .matrix import INDEX_DTYPE, SparseMatrix


def kron(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """``A ⊗ B`` with shape ``(a.nrows * b.nrows, a.ncols * b.ncols)``."""
    if a.nnz == 0 or b.nnz == 0:
        return SparseMatrix.empty(a.nrows * b.nrows, a.ncols * b.ncols)
    ar, ac, av = a.to_coo()
    br, bc, bv = b.to_coo()
    rows = (ar[:, None] * np.int64(b.nrows) + br[None, :]).ravel()
    cols = (ac[:, None] * np.int64(b.ncols) + bc[None, :]).ravel()
    vals = (av[:, None] * bv[None, :]).ravel()
    return SparseMatrix.from_coo(
        a.nrows * b.nrows, a.ncols * b.ncols, rows, cols, vals,
        sum_duplicates=False,
    )


def kron_power(a: SparseMatrix, k: int) -> SparseMatrix:
    """``A ⊗ A ⊗ ... ⊗ A`` (k factors); ``k = 0`` gives the 1x1 identity."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    out = SparseMatrix.from_coo(1, 1, [0], [0], [1.0])
    for _ in range(k):
        out = kron(out, a)
    return out


def laplacian_2d(side: int) -> SparseMatrix:
    """The 5-point 2D Laplacian on a ``side x side`` grid via Kronecker
    sums — the classic separable stencil construction."""
    from .construct import eye
    from .merge import merge_grouped

    n = side
    main = np.full(n, 2.0)
    idx = np.arange(n, dtype=INDEX_DTYPE)
    off = np.arange(n - 1, dtype=INDEX_DTYPE)
    t = SparseMatrix.from_coo(
        n, n,
        np.concatenate([idx, off, off + 1]),
        np.concatenate([idx, off + 1, off]),
        np.concatenate([main, -np.ones(n - 1), -np.ones(n - 1)]),
    )
    i = eye(n)
    return merge_grouped([kron(i, t), kron(t, i)])
