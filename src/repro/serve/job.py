"""Job objects: what a tenant submits, what the service tracks, what the
client holds while waiting.

Lifecycle (see DESIGN.md "Serving and overload robustness")::

    submit() ──rejected──► AdmissionRejected (raised synchronously)
       │
       ▼
    QUEUED ──cancel()──► CANCELLED
       │ deadline passes while queued ──► EXPIRED
       ▼
    RUNNING ──► DONE | FAILED | EXPIRED (deadline during execution)

Running jobs are never preempted — an SPMD region completes or fails as
a unit — so ``cancel()`` only wins while the job is still queued.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..errors import ServeError
from ..sparse.matrix import SparseMatrix

#: job kinds the service executes
JOB_KINDS = ("multiply", "masked_spgemm", "spmm", "square_chain")

# terminal + live job states
PENDING = "pending"
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
EXPIRED = "expired"

TERMINAL_STATES = (DONE, FAILED, CANCELLED, EXPIRED)


@dataclass
class JobSpec:
    """One unit of tenant work.

    ``b`` defaults to ``a`` (squaring).  ``mask`` is required for
    ``masked_spgemm``; for ``spmm`` ``b`` is the dense feature panel.
    ``rounds`` applies to ``square_chain`` only — the HipMCL-style
    iterated squaring pipeline executed on the resident grid.
    ``deadline_s`` is a wall-clock budget from admission: it gates
    admission, bounds queue wait, and is installed as the execution
    world's watchdog timeout.  ``memory_budget`` (aggregate bytes)
    overrides the service's grid budget for this job's plan.
    """

    tenant: str
    kind: str = "multiply"
    a: SparseMatrix | None = None
    b: object | None = None
    mask: SparseMatrix | None = None
    rounds: int = 2
    semiring: str = "plus_times"
    deadline_s: float | None = None
    memory_budget: int | None = None
    label: str | None = None
    #: deterministic fault plan injected into this job's execution —
    #: the same first-class testing hook the rest of the library exposes
    #: (chaos tests crash a service job's ranks for real this way)
    faults: object | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServeError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            ).with_context(reason="unsupported", kind=self.kind)
        if self.a is None:
            raise ServeError("a JobSpec needs an 'a' operand")
        if self.b is None and self.kind != "spmm":
            self.b = self.a
        if self.kind == "spmm" and self.b is None:
            raise ServeError('kind="spmm" needs b= (the dense feature panel)')
        if self.kind == "masked_spgemm" and self.mask is None:
            raise ServeError('kind="masked_spgemm" needs mask=')
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServeError(
                f"deadline_s must be > 0 seconds, got {self.deadline_s}"
            )
        if self.kind == "square_chain" and self.rounds < 1:
            raise ServeError(f"rounds must be >= 1, got {self.rounds}")


@dataclass
class JobResult:
    """What a completed job hands back to its tenant."""

    matrix: object  # SparseMatrix, dense ndarray (spmm), per-kind payload
    info: dict
    plan: dict
    latency_s: float
    queued_s: float
    heals: int = 0
    cache_hit: bool = False
    slot: int | None = None


class Job:
    """Internal record — one submitted job moving through the service."""

    _ids = iter(range(1, 1 << 62))
    _ids_lock = threading.Lock()

    def __init__(self, spec: JobSpec, *, plan=None, plan_key=None,
                 cache_hit: bool = False, cost_s: float = 0.0,
                 charge=None) -> None:
        with Job._ids_lock:
            self.id = next(Job._ids)
        self.spec = spec
        self.plan = plan            # ExecPlan from admission
        self.plan_key = plan_key
        self.cache_hit = bool(cache_hit)
        #: DRR cost unit — the plan's predicted (modelled) seconds
        self.cost_s = float(cost_s)
        #: tenant-ledger allocations to release at completion
        self.charge = charge
        self.state = PENDING
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: absolute monotonic deadline (None = no deadline)
        self.deadline_at = (
            None if spec.deadline_s is None
            else self.submitted_at + float(spec.deadline_s)
        )
        self.slot: int | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self.result: JobResult | None = None
        self.error: BaseException | None = None

    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self.spec.label or f"job-{self.id}"

    def remaining_deadline(self, now: float | None = None) -> float | None:
        if self.deadline_at is None:
            return None
        return self.deadline_at - (time.monotonic() if now is None else now)

    def transition(self, state: str) -> bool:
        """Move to ``state`` unless already terminal; returns success."""
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            if state == RUNNING:
                self.started_at = time.monotonic()
            return True

    def finish(self, result: JobResult) -> bool:
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = DONE
            self.result = result
            self.finished_at = time.monotonic()
        self._done.set()
        return True

    def fail(self, error: BaseException, state: str = FAILED) -> bool:
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.error = error
            self.finished_at = time.monotonic()
        self._done.set()
        return True

    def __repr__(self) -> str:
        return (
            f"Job({self.name!r}, tenant={self.spec.tenant!r}, "
            f"kind={self.spec.kind!r}, state={self.state!r})"
        )


class JobHandle:
    """The client's view of a submitted job."""

    def __init__(self, job: Job, service) -> None:
        self._job = job
        self._service = service

    @property
    def id(self) -> int:
        return self._job.id

    @property
    def tenant(self) -> str:
        return self._job.spec.tenant

    @property
    def state(self) -> str:
        return self._job.state

    def done(self) -> bool:
        return self._job._done.is_set()

    def cancel(self) -> bool:
        """Cancel if still queued; running/terminal jobs are unaffected.
        Returns whether this call cancelled the job."""
        return self._service._cancel(self._job)

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its
        :class:`JobResult`, re-raising the job's classified error on
        failure and :class:`TimeoutError` if ``timeout`` elapses first."""
        if not self._job._done.wait(timeout):
            raise TimeoutError(
                f"{self._job.name} still {self._job.state} after {timeout}s"
            )
        if self._job.error is not None:
            raise self._job.error
        assert self._job.result is not None
        return self._job.result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._job._done.wait(timeout):
            raise TimeoutError(
                f"{self._job.name} still {self._job.state} after {timeout}s"
            )
        return self._job.error

    def __repr__(self) -> str:
        return f"JobHandle({self._job!r})"
