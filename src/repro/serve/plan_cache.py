"""LRU cache of :func:`~repro.summa.planner.auto_config` decisions.

Admission control needs a plan (layers, batches, backend, predicted
seconds, Table III memory) for *every* submitted job — including the ones
it rejects — so planning sits on the service's hot path.  Repeat traffic
(the same graph squared every HipMCL iteration, the same adjacency every
GNN epoch) re-plans the same structure over and over; the cache keys the
decision by the operands' :class:`~repro.serve.sketch.MatrixSketch` plus
every knob that changes the answer (kernel, backend, overlap, grid size,
memory budget), so a hit is a dict lookup and a miss is one
``auto_config(use_symbolic=False)``.

Invalidation is by construction: any structural change to an operand
moves its sketch, and any change to kernel/backend/overlap/nprocs/budget
changes the key, so a stale plan can never be returned for different
inputs.  Values do not enter the key — plans are value-independent
(see :mod:`repro.serve.sketch`), which is exactly why caching is sound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..plan.spec import ExecPlan
from ..summa.planner import auto_config
from .sketch import MatrixSketch, sketch_of


class PlanCache:
    """Thread-safe LRU map from plan keys to
    :class:`~repro.plan.ExecPlan` (the reified execution plan the
    auto-tuner returns — historically called ``PlanChoice``)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, ExecPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #

    @staticmethod
    def key(
        a,
        b,
        *,
        nprocs: int,
        memory_budget: int | None,
        kernel: str = "spgemm",
        backend: str = "dense",
        overlap: str = "off",
        mask=None,
    ) -> tuple:
        """The full cache key for one planning question.

        Operands enter as sketches; ``mask`` (masked SpGEMM's pattern)
        is an operand too — a different mask changes the effective
        output structure a plan should be priced for.
        """
        def _sk(x):
            if x is None:
                return None
            if isinstance(x, MatrixSketch):
                return x
            return sketch_of(x)

        return (
            _sk(a),
            _sk(b),
            str(kernel),
            str(backend),
            str(overlap),
            int(nprocs),
            None if memory_budget is None else int(memory_budget),
            _sk(mask),
        )

    def lookup(self, key: tuple) -> ExecPlan | None:
        """Return the cached plan for ``key`` (refreshing recency) or
        ``None``.  Does not count a miss — :meth:`plan` does."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def insert(self, key: tuple, plan: ExecPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def plan(
        self,
        a,
        b,
        *,
        nprocs: int,
        memory_budget: int | None = None,
        kernel: str = "spgemm",
        backend: str = "dense",
        overlap: str = "off",
        mask=None,
        machine=None,
        sample=None,
    ) -> tuple[ExecPlan, bool]:
        """Plan one multiplication through the cache.

        Returns ``(plan, hit)``.  Misses run the analytic planner
        (``use_symbolic=False`` — admission cannot afford a distributed
        symbolic pass per arrival) and may raise
        :class:`~repro.errors.PlannerError` when no configuration fits;
        infeasibility is *not* cached, so a later submit with a larger
        budget re-plans.
        """
        key = self.key(
            a, b, nprocs=nprocs, memory_budget=memory_budget,
            kernel=kernel, backend=backend, overlap=overlap, mask=mask,
        )
        cached = self.lookup(key)
        if cached is not None:
            with self._lock:
                self.hits += 1
            return cached, True
        plan = auto_config(
            a, b, nprocs,
            memory_budget=memory_budget,
            machine=machine,
            use_symbolic=False,
            backend=backend,
            overlap=overlap,
            kernel=kernel,
            sample=sample if sample is not None else mask,
        )
        with self._lock:
            self.misses += 1
        self.insert(key, plan)
        return plan, False

    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": int(self.hits),
                "misses": int(self.misses),
                "evictions": int(self.evictions),
            }
