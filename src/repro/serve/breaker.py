"""Per-grid circuit breaker: healthy → degraded → quarantined.

A resident grid that keeps healing is telling you something: the same
spare pool absorbs every crash, shrink-mode runs keep narrowing the
grid, and `/dev/shm` hygiene failures mean worker teardown is no longer
trustworthy.  The breaker turns that drift into an explicit state
machine the pool acts on:

* ``healthy`` — dispatch normally;
* ``degraded`` — still dispatching, but the slot is flagged (stats and
  logs surface it; the pool prefers healthy slots when it has a choice);
* ``quarantined`` — the slot finishes its current job, is drained and
  re-forked (fresh ``DistContext``, fresh workers, clean shm), and the
  breaker resets.

Scoring is incident-weighted, not boolean: a heal is survivable (weight
1) while an unexplained job failure or an shm leak after sweep is worse
(weight 2) — repeated heals degrade a grid, repeated leaks quarantine it
quickly.  ``record_success`` decays the score so an old incident does
not permanently haunt a now-healthy grid.
"""

from __future__ import annotations

import threading

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

STATES = (HEALTHY, DEGRADED, QUARANTINED)

#: incident weights
WEIGHT_HEAL = 1.0
WEIGHT_FAILURE = 2.0
WEIGHT_SHM_LEAK = 2.0

#: multiplicative score decay per clean job
SUCCESS_DECAY = 0.5


class CircuitBreaker:
    """Incident accumulator with two thresholds."""

    def __init__(self, *, degrade_after: float = 2.0,
                 quarantine_after: float = 4.0) -> None:
        if not (0 < degrade_after <= quarantine_after):
            raise ValueError(
                f"need 0 < degrade_after <= quarantine_after, got "
                f"{degrade_after} / {quarantine_after}"
            )
        self.degrade_after = float(degrade_after)
        self.quarantine_after = float(quarantine_after)
        self._lock = threading.Lock()
        self.score = 0.0
        self.heals = 0
        self.failures = 0
        self.shm_leaks = 0
        self.trips = 0  # times quarantine was reached

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self.score >= self.quarantine_after:
            return QUARANTINED
        if self.score >= self.degrade_after:
            return DEGRADED
        return HEALTHY

    def _bump(self, weight: float) -> str:
        with self._lock:
            before = self._state_locked()
            self.score += weight
            after = self._state_locked()
            if after == QUARANTINED and before != QUARANTINED:
                self.trips += 1
            return after

    def record_heal(self, events: int = 1) -> str:
        """A job on this grid healed ``events`` rank losses."""
        with self._lock:
            self.heals += int(events)
        return self._bump(WEIGHT_HEAL * max(1, int(events)))

    def record_failure(self) -> str:
        """A job failed on this grid for a non-client reason (crashed
        ranks past healing, watchdog hang, engine error)."""
        with self._lock:
            self.failures += 1
        return self._bump(WEIGHT_FAILURE)

    def record_shm_leak(self, segments: int = 1) -> str:
        """Post-job hygiene found (and swept) leaked shm segments."""
        with self._lock:
            self.shm_leaks += int(segments)
        return self._bump(WEIGHT_SHM_LEAK)

    def record_success(self) -> str:
        """A job completed clean — decay the score."""
        with self._lock:
            self.score *= SUCCESS_DECAY
            if self.score < 1e-3:
                self.score = 0.0
            return self._state_locked()

    def reset(self) -> None:
        """Fresh grid after a re-fork: clean slate (trip count kept)."""
        with self._lock:
            self.score = 0.0

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "score": round(self.score, 3),
                "heals": self.heals,
                "failures": self.failures,
                "shm_leaks": self.shm_leaks,
                "trips": self.trips,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, score={self.score:.2f})"
