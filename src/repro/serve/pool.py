"""The resident grid pool: N long-lived execution slots.

Each :class:`GridSlot` owns one :class:`~repro.dist.DistContext` — a
persistent grid in the configured execution world — plus its
:class:`~repro.serve.breaker.CircuitBreaker`.  Jobs execute *on* a slot
(the service's worker threads each drive one slot), the slot's context
is reused across jobs (this is what PR-pattern "stop spinning up a world
per multiply" means), and a quarantined slot is re-forked: the old
context is closed (sweeping `/dev/shm` and reaping any straggling
workers — the satellite-1 contract) and a fresh one takes its place.
"""

from __future__ import annotations

import threading

from ..dist import DistContext
from ..simmpi.tracker import CommTracker


class GridSlot:
    """One resident grid and its health state."""

    def __init__(
        self,
        slot_id: int,
        *,
        nprocs: int,
        layers: int = 1,
        world: str = "threads",
        transport: str = "auto",
        timeout: float = 30.0,
        breaker=None,
    ) -> None:
        from .breaker import CircuitBreaker

        self.slot_id = int(slot_id)
        self.nprocs = int(nprocs)
        self.layers = int(layers)
        self.world = world
        self.transport = transport
        self.timeout = float(timeout)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.tracker = CommTracker()
        self.jobs_done = 0
        self.reforks = 0
        self._lock = threading.Lock()
        self._ctx: DistContext | None = None

    # ------------------------------------------------------------------ #

    def context(self) -> DistContext:
        """The slot's resident context (created on first use, replaced
        on re-fork)."""
        with self._lock:
            if self._ctx is None or self._ctx.closed:
                self._ctx = DistContext(
                    nprocs=self.nprocs,
                    layers=self.layers,
                    tracker=self.tracker,
                    timeout=self.timeout,
                    world=self.world,
                    transport=self.transport,
                )
            return self._ctx

    def refork(self) -> None:
        """Quarantine response: tear the grid down completely (close
        sweeps shm and reaps workers even if the last job raised) and
        start clean.  The breaker resets — a fresh grid earns a fresh
        score."""
        with self._lock:
            ctx, self._ctx = self._ctx, None
        if ctx is not None:
            ctx.close()
        self.breaker.reset()
        self.reforks += 1

    def close(self) -> None:
        with self._lock:
            ctx, self._ctx = self._ctx, None
        if ctx is not None:
            ctx.close()

    def stats(self) -> dict:
        return {
            "slot": self.slot_id,
            "nprocs": self.nprocs,
            "layers": self.layers,
            "world": self.world,
            "jobs_done": self.jobs_done,
            "reforks": self.reforks,
            "breaker": self.breaker.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"GridSlot({self.slot_id}, p={self.nprocs}, l={self.layers}, "
            f"world={self.world!r}, {self.breaker.state})"
        )


class GridPool:
    """The service's fixed set of slots."""

    def __init__(self, slots: list[GridSlot]) -> None:
        if not slots:
            raise ValueError("a GridPool needs at least one slot")
        self.slots = list(slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def close(self) -> None:
        """Shut every slot down; errors in one slot's teardown never
        stop the others' (the pool must always fully release shm)."""
        errors = []
        for slot in self.slots:
            try:
                slot.close()
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append((slot.slot_id, exc))
        if errors:
            raise errors[0][1]

    def stats(self) -> list[dict]:
        return [slot.stats() for slot in self.slots]
