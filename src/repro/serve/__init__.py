"""`repro.serve` — a crash-transparent, overload-safe multi-tenant
SpGEMM service over a pool of resident grids.

The paper's α–β makespan model and Table III memory model decide whether
a run fits *before it starts*; this package turns them into admission
predicates for a stream of jobs.  See DESIGN.md "Serving and overload
robustness" and docs/API.md for the full lifecycle and error taxonomy.

>>> from repro.serve import SpgemmService
>>> with SpgemmService(grids=2, nprocs=4, world="threads") as svc:
...     handle = svc.submit(tenant="alice", a=matrix, deadline_s=30.0)
...     product = handle.result(timeout=60).matrix
"""

from ..errors import (
    AdmissionRejected,
    DeadlineExceededError,
    JobCancelledError,
    ServeError,
)
from .admission import KIND_KERNELS, REJECT_REASONS, AdmissionController
from .breaker import DEGRADED, HEALTHY, QUARANTINED, CircuitBreaker
from .job import JOB_KINDS, JobHandle, JobResult, JobSpec
from .plan_cache import PlanCache
from .pool import GridPool, GridSlot
from .queue import FairQueue
from .service import SpgemmService
from .sketch import MatrixSketch, sketch_of

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "CircuitBreaker",
    "DEGRADED",
    "DeadlineExceededError",
    "FairQueue",
    "GridPool",
    "GridSlot",
    "HEALTHY",
    "JOB_KINDS",
    "JobCancelledError",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "KIND_KERNELS",
    "MatrixSketch",
    "PlanCache",
    "QUARANTINED",
    "REJECT_REASONS",
    "ServeError",
    "SpgemmService",
    "sketch_of",
]
