"""Bounded per-tenant queues with deficit-round-robin fair dequeue.

Fairness is the overload story's second half: admission keeps the total
backlog bounded, DRR decides *whose* backlog drains.  Each tenant owns a
bounded FIFO; dequeue visits tenants in round-robin order, crediting each
visited tenant a fixed quantum of cost (the job's modelled seconds from
its plan) and dispatching that tenant's head job once its accumulated
deficit covers the job's cost.  A tenant flooding the service with huge
jobs therefore cannot starve a tenant submitting small ones — over any
window, served cost per backlogged tenant converges to the quantum ratio
(all quanta equal here, so to equal shares), which is what keeps every
tenant's accepted throughput > 0 at 2× overload.

The structure is deliberately small and lock-ordered: one mutex + one
condition guards everything, and the only blocking wait is
:meth:`pop`'s timed condition wait, so a service shutdown can always
wake the workers.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict, deque

from .job import QUEUED, Job

#: default per-visit DRR credit, in modelled seconds.  Any positive value
#: is fair in the limit; smaller quanta approximate bit-level fairness at
#: the price of more rotation scans.
DEFAULT_QUANTUM_S = 0.05


class FairQueue:
    """Per-tenant bounded FIFOs + deficit round-robin dispatch."""

    def __init__(self, *, capacity: int = 16,
                 quantum_s: float = DEFAULT_QUANTUM_S) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if quantum_s <= 0:
            raise ValueError(f"quantum_s must be > 0, got {quantum_s}")
        self.capacity = int(capacity)
        self.quantum_s = float(quantum_s)
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        # OrderedDict preserves rotation order; _cursor remembers where
        # the last dispatch stopped so service resumes round-robin there.
        self._queues: OrderedDict[str, deque[Job]] = OrderedDict()
        self._deficit: dict[str, float] = {}
        self._capacity_override: dict[str, int] = {}
        self._cursor: str | None = None
        self._size = 0
        self._backlog_s = 0.0
        self._closed = False

    # ------------------------------------------------------------------ #
    # introspection (used by admission)
    # ------------------------------------------------------------------ #

    def set_capacity(self, tenant: str, capacity: int) -> None:
        """Per-tenant queue bound override (defaults to the global one)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity_override[str(tenant)] = int(capacity)

    def capacity_of(self, tenant: str) -> int:
        with self._lock:
            return self._capacity_override.get(str(tenant), self.capacity)

    def depth(self, tenant: str) -> int:
        with self._lock:
            q = self._queues.get(str(tenant))
            return 0 if q is None else len(q)

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def backlog_seconds(self) -> float:
        """Sum of queued jobs' modelled cost — the admission controller's
        overload and queue-wait signal."""
        with self._lock:
            return self._backlog_s

    # ------------------------------------------------------------------ #
    # producer / consumer
    # ------------------------------------------------------------------ #

    def push(self, job: Job) -> bool:
        """Enqueue; returns ``False`` when the tenant's queue is full or
        the queue is closed (admission turns that into a classified
        rejection — the queue itself never raises at a tenant)."""
        tenant = job.spec.tenant
        with self._lock:
            if self._closed:
                return False
            q = self._queues.get(tenant)
            cap = self._capacity_override.get(tenant, self.capacity)
            if q is not None and len(q) >= cap:
                return False
            if q is None:
                q = self._queues.setdefault(tenant, deque())
                self._deficit.setdefault(tenant, 0.0)
            job.transition(QUEUED)
            q.append(job)
            self._size += 1
            self._backlog_s += job.cost_s
            self._nonempty.notify()
            return True

    def pop(self, timeout: float | None = None) -> Job | None:
        """DRR dispatch: the next job some tenant's deficit affords.

        Blocks up to ``timeout`` for work; returns ``None`` on timeout or
        close.  Jobs already cancelled/expired while queued are skipped
        (their terminal state was set by ``cancel()``/the deadline scan)
        and simply drop out of the rotation.
        """
        with self._lock:
            while True:
                job = self._pop_locked()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._nonempty.wait(timeout):
                    return None

    def _pop_locked(self) -> Job | None:
        while self._size:
            # cancelled/expired jobs drop out of the rotation up front so
            # they neither earn their tenant credit nor get "served"
            for tenant, q in self._queues.items():
                while q and q[0].state != QUEUED:
                    dead = q.popleft()
                    self._size -= 1
                    self._backlog_s = max(0.0, self._backlog_s - dead.cost_s)
            tenants = [t for t, q in self._queues.items() if q]
            if not tenants:
                return None
            # rotate so the scan starts after the last served tenant
            if self._cursor in tenants:
                i = tenants.index(self._cursor) + 1
                tenants = tenants[i:] + tenants[:i]
            # Closed-form DRR: visiting in rotation order and crediting one
            # quantum per visit, tenant at position i needs
            # k_i = max(1, ceil((cost_i - deficit_i) / quantum)) visits for
            # its head to become affordable; the dispatched job is the one
            # minimising (k_i, i).  Crediting everyone their visit count up
            # to that point reproduces the iterative scan exactly without
            # iterating cost/quantum rotations.
            best_k = best_i = None
            for i, tenant in enumerate(tenants):
                short = self._queues[tenant][0].cost_s - self._deficit[tenant]
                k = max(1, math.ceil(short / self.quantum_s))
                if best_k is None or k < best_k:
                    best_k, best_i = k, i
            for i, tenant in enumerate(tenants):
                visits = best_k if i <= best_i else best_k - 1
                self._deficit[tenant] += visits * self.quantum_s
            return self._serve_locked(tenants[best_i])
        return None

    def _serve_locked(self, tenant: str) -> Job:
        q = self._queues[tenant]
        job = q.popleft()
        self._deficit[tenant] = max(0.0, self._deficit[tenant] - job.cost_s)
        self._cursor = tenant
        self._size -= 1
        self._backlog_s = max(0.0, self._backlog_s - job.cost_s)
        if not q:
            # standard DRR: an idle tenant's credit does not accumulate
            self._deficit[tenant] = 0.0
        return job

    def remove(self, job: Job) -> bool:
        """Drop one queued job (cancellation)."""
        with self._lock:
            q = self._queues.get(job.spec.tenant)
            if q is None:
                return False
            try:
                q.remove(job)
            except ValueError:
                return False
            self._size -= 1
            self._backlog_s = max(0.0, self._backlog_s - job.cost_s)
            return True

    def drain(self) -> list[Job]:
        """Remove and return every queued job (shutdown path)."""
        with self._lock:
            jobs = [j for q in self._queues.values() for j in q]
            for q in self._queues.values():
                q.clear()
            self._size = 0
            self._backlog_s = 0.0
            return jobs

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._nonempty.notify_all()

    def scan(self, fn) -> None:
        """Apply ``fn(job)`` to every queued job under the lock (the
        service's deadline sweep); ``fn`` must not block."""
        with self._lock:
            for q in self._queues.values():
                for job in q:
                    fn(job)
