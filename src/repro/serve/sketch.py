"""Structural matrix sketches — the plan cache's identity of an operand.

A plan (:class:`~repro.summa.planner.PlanChoice`) depends on an operand
only through its *structure*: dimensions and the nonzero pattern that the
symbolic statistics (``nnz``, ``flops``, compression factor) are computed
from.  Values never enter ``auto_config``, so two matrices with the same
pattern and different values must hash to the same sketch — that is what
makes repeat traffic (iterated squaring with decaying values, GNN epochs
over a fixed graph) hit the cache.

The fingerprint is a CRC over the full ``indptr`` (cheap: ``ncols + 1``
words, and any sparsity change moves at least one column pointer) plus a
strided sample of ``rowidx`` capped at :data:`SAMPLE_CAP` entries, so
sketching stays O(ncols) on huge operands while still separating
patterns that happen to share all column counts.  Dense panels (SpMM
feature matrices) contribute geometry only — the plan for a dense
operand is a pure function of its shape.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..sparse.matrix import SparseMatrix

#: upper bound on sampled ``rowidx`` entries per sketch
SAMPLE_CAP = 4096


@dataclass(frozen=True)
class MatrixSketch:
    """Hashable structural identity of one multiply operand."""

    kind: str  # "sparse" | "dense"
    nrows: int
    ncols: int
    nnz: int
    fingerprint: int

    def __str__(self) -> str:  # compact form for logs / job reprs
        return (
            f"{self.kind}:{self.nrows}x{self.ncols}"
            f"/nnz={self.nnz}/{self.fingerprint:08x}"
        )


def _crc(*arrays) -> int:
    crc = 0
    for arr in arrays:
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc & 0xFFFFFFFF


def sketch_of(operand) -> MatrixSketch:
    """Sketch a sparse matrix or dense panel.

    Sparse: CRC of ``indptr`` + a ≤ :data:`SAMPLE_CAP` strided sample of
    ``rowidx``.  Dense (any object with ``.shape`` and no ``indptr``):
    geometry only.
    """
    if isinstance(operand, SparseMatrix) or hasattr(operand, "indptr"):
        nnz = int(operand.nnz)
        rowidx = operand.rowidx
        step = max(1, len(rowidx) // SAMPLE_CAP)
        return MatrixSketch(
            kind="sparse",
            nrows=int(operand.nrows),
            ncols=int(operand.ncols),
            nnz=nnz,
            fingerprint=_crc(operand.indptr, rowidx[::step]),
        )
    arr = np.asanyarray(operand)
    if arr.ndim != 2:
        raise TypeError(
            f"cannot sketch operand of type {type(operand).__name__} "
            f"with ndim={arr.ndim}; expected a SparseMatrix or 2-D panel"
        )
    nrows, ncols = (int(d) for d in arr.shape)
    return MatrixSketch(
        kind="dense",
        nrows=nrows,
        ncols=ncols,
        nnz=nrows * ncols,
        fingerprint=_crc(np.asarray(arr.shape, dtype=np.int64)),
    )
