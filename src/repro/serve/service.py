"""`SpgemmService` — the long-lived scheduler over a resident grid pool.

One instance owns

* a :class:`~repro.serve.pool.GridPool` of resident execution slots
  (threads or real forked process worlds);
* a :class:`~repro.serve.queue.FairQueue` of admitted jobs (bounded
  per-tenant, deficit-round-robin dispatch);
* an :class:`~repro.serve.admission.AdmissionController` that plans
  every arrival through the :class:`~repro.serve.plan_cache.PlanCache`
  and rejects with classified errors;
* one worker thread per slot that pops jobs, executes them on its slot,
  and feeds the slot's :class:`~repro.serve.breaker.CircuitBreaker`.

Robustness contracts (the tested ones):

* **crash transparency** — ``multiply`` jobs run under the PR 4/8 heal
  path (``heal=`` + spares + a per-job checkpoint directory), so a rank
  lost mid-job is healed online and the client receives the bit-identical
  product with the event recorded in
  ``result.info["resilience"]["heal"]`` — never an error;
* **deadlines** — a job's remaining deadline is installed as the
  execution world's watchdog timeout, so an overrun surfaces as a
  classified hang that the service converts to
  :class:`~repro.errors.DeadlineExceededError` (phase ``"running"``);
  jobs whose deadline lapses while queued expire without running;
* **overload** — submits beyond the backlog shed limit fail fast with
  :class:`~repro.errors.AdmissionRejected`; accepted work is bounded, so
  accepted-job latency stays within a fixed multiple of the single-job
  baseline (asserted by ``benchmarks/bench_serve.py --smoke``);
* **hygiene** — quarantined slots drain and re-fork, and
  :meth:`shutdown` closes every resident context, which sweeps
  `/dev/shm` even when the last job raised (the satellite-1
  ``DistContext.close`` contract).
"""

from __future__ import annotations

import os
import shutil
import threading
import time

from ..errors import (
    AdmissionRejected,
    DeadlineExceededError,
    HangError,
    JobCancelledError,
    ReproError,
    SpmdError,
)
from ..resilience.checkpoint import run_key
from ..summa.batched import run_plan
from .admission import KIND_KERNELS, AdmissionController
from .breaker import QUARANTINED, CircuitBreaker
from .job import (
    CANCELLED,
    EXPIRED,
    QUEUED,
    RUNNING,
    Job,
    JobHandle,
    JobResult,
    JobSpec,
)
from .plan_cache import PlanCache
from .pool import GridPool, GridSlot
from .queue import FairQueue

#: floor on the watchdog timeout installed for a nearly-expired job —
#: below this the run would be killed by setup cost, not real overrun
_MIN_RUN_TIMEOUT_S = 0.5


class SpgemmService:
    """Multi-tenant SpGEMM serving over resident grids.

    >>> with SpgemmService(grids=2, nprocs=4) as svc:
    ...     h = svc.submit(tenant="alice", a=matrix)
    ...     product = h.result(timeout=30).matrix
    """

    def __init__(
        self,
        *,
        grids: int = 1,
        nprocs: int = 4,
        layers: int = 1,
        world: str = "threads",
        transport: str = "auto",
        timeout: float = 30.0,
        memory_budget: int | None = None,
        machine=None,
        backend: str = "dense",
        overlap: str = "off",
        queue_capacity: int = 16,
        quantum_s: float = 0.05,
        max_backlog_s: float = 60.0,
        default_deadline_s: float | None = None,
        heal: str | None = None,
        world_spares: int = 0,
        checkpoint_root=None,
        checkpoint_keep_last: int | None = 2,
        plan_cache_capacity: int = 128,
        degrade_after: float = 2.0,
        quarantine_after: float = 4.0,
        auto_start: bool = True,
    ) -> None:
        if heal is not None and checkpoint_root is None:
            raise ValueError(
                "heal= needs checkpoint_root= (online healing re-enters "
                "from the last completed batch, so jobs must checkpoint)"
            )
        self.world = world
        self.overlap = overlap
        self.heal = heal
        self.world_spares = int(world_spares)
        self.checkpoint_root = (
            None if checkpoint_root is None else os.fspath(checkpoint_root)
        )
        self.checkpoint_keep_last = checkpoint_keep_last
        self.pool = GridPool([
            GridSlot(
                i, nprocs=nprocs, layers=layers, world=world,
                transport=transport, timeout=timeout,
                breaker=CircuitBreaker(
                    degrade_after=degrade_after,
                    quarantine_after=quarantine_after,
                ),
            )
            for i in range(max(1, int(grids)))
        ])
        self.plan_cache = PlanCache(capacity=plan_cache_capacity)
        self.queue = FairQueue(capacity=queue_capacity, quantum_s=quantum_s)
        self.admission = AdmissionController(
            queue=self.queue,
            plan_cache=self.plan_cache,
            nprocs=nprocs,
            grids=len(self.pool),
            memory_budget=memory_budget,
            machine=machine,
            backend=backend,
            overlap=overlap,
            max_backlog_s=max_backlog_s,
            default_deadline_s=default_deadline_s,
        )
        #: when False, workers only run after an explicit ``start()`` —
        #: jobs submitted before that simply wait in the queue
        self.auto_start = bool(auto_start)
        self._lock = threading.Lock()
        self._shutdown = False
        self._started = False
        self._workers: list[threading.Thread] = []
        self._latencies: list[float] = []
        self._counters = {
            "submitted": 0, "accepted": 0, "completed": 0, "failed": 0,
            "expired": 0, "cancelled": 0, "heals": 0, "reforks": 0,
        }
        self._started_at: float | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "SpgemmService":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._started_at = time.monotonic()
        for slot in self.pool:
            t = threading.Thread(
                target=self._worker, args=(slot,),
                name=f"serve-slot-{slot.slot_id}", daemon=True,
            )
            self._workers.append(t)
            t.start()
        return self

    def shutdown(self, wait: bool = True, timeout: float = 60.0) -> None:
        """Stop admitting, cancel queued jobs, join workers, close every
        resident grid (sweeping `/dev/shm`)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self.queue.close()
        for job in self.queue.drain():
            self._finish_failed(
                job,
                JobCancelledError(
                    f"{job.name} cancelled: service shut down"
                ).with_context(tenant=job.spec.tenant, job=job.name),
                state=CANCELLED,
            )
        if wait:
            deadline = time.monotonic() + timeout
            for t in self._workers:
                t.join(max(0.0, deadline - time.monotonic()))
        self.pool.close()

    def __enter__(self) -> "SpgemmService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # client surface
    # ------------------------------------------------------------------ #

    def register_tenant(self, name: str, *,
                        memory_budget: int | None = None,
                        queue_capacity: int | None = None):
        """Declare a tenant up front (budgets and queue bounds;
        unregistered tenants get service defaults on first submit)."""
        if queue_capacity is not None:
            self.queue.set_capacity(name, queue_capacity)
        return self.admission.register_tenant(
            name, memory_budget=memory_budget
        )

    def submit(self, spec: JobSpec | None = None, /, **kwargs) -> JobHandle:
        """Admit one job (or raise :class:`~repro.errors.AdmissionRejected`
        synchronously) and return its :class:`~repro.serve.job.JobHandle`.

        Accepts either a prebuilt :class:`~repro.serve.job.JobSpec` or its
        keyword fields (``tenant=``, ``a=``, ``kind=``, ...).
        """
        if spec is None:
            spec = JobSpec(**kwargs)
        elif kwargs:
            raise ValueError("pass a JobSpec or keyword fields, not both")
        with self._lock:
            self._counters["submitted"] += 1
            shutting_down = self._shutdown
        job = self.admission.admit(spec, shutting_down=shutting_down)
        if not self.queue.push(job):
            # raced with a burst (gate passed, queue filled) or shutdown
            self.admission.release(job, outcome="rejected")
            reason = "shutdown" if self._shutdown else "queue-full"
            raise AdmissionRejected(
                f"tenant {spec.tenant!r} queue refused {job.name}",
                reason=reason, tenant=spec.tenant, job=job.name,
            )
        with self._lock:
            self._counters["accepted"] += 1
        if self.auto_start and not self._started:
            self.start()
        return JobHandle(job, self)

    def _cancel(self, job: Job) -> bool:
        with job._lock:
            if job.state != QUEUED:
                return False
            job.state = CANCELLED
            job.error = JobCancelledError(
                f"{job.name} cancelled by client"
            ).with_context(tenant=job.spec.tenant, job=job.name)
            job.finished_at = time.monotonic()
        job._done.set()
        self.queue.remove(job)
        self.admission.release(job, outcome="cancelled")
        with self._lock:
            self._counters["cancelled"] += 1
        return True

    # ------------------------------------------------------------------ #
    # worker loop
    # ------------------------------------------------------------------ #

    def _worker(self, slot: GridSlot) -> None:
        while True:
            job = self.queue.pop(timeout=0.1)
            if job is None:
                if self._shutdown:
                    return
                continue
            remaining = job.remaining_deadline()
            if remaining is not None and remaining <= 0:
                self._finish_failed(
                    job,
                    DeadlineExceededError(
                        f"{job.name} deadline passed after "
                        f"{job.spec.deadline_s:.3g}s in queue",
                        phase="queued", tenant=job.spec.tenant,
                        job=job.name, deadline_s=job.spec.deadline_s,
                    ),
                    state=EXPIRED,
                )
                continue
            if not job.transition(RUNNING):
                continue  # cancelled in the pop window
            job.slot = slot.slot_id
            self._run_on_slot(slot, job)
            if slot.breaker.state == QUARANTINED:
                slot.refork()
                with self._lock:
                    self._counters["reforks"] += 1
            if self._shutdown and not len(self.queue):
                return

    def _run_on_slot(self, slot: GridSlot, job: Job) -> None:
        t0 = time.monotonic()
        ckpt_dir = None
        try:
            matrix, info, ckpt_dir = self._execute(slot, job)
        except ReproError as exc:
            self._classify_failure(slot, job, exc)
            return
        except Exception as exc:  # noqa: BLE001 - must never kill a worker
            err = SpmdError({0: exc})
            err.with_context(tenant=job.spec.tenant, job=job.name)
            self._classify_failure(slot, job, err)
            return
        wall = time.monotonic() - t0
        heal_info = (info.get("resilience") or {}).get("heal") or {}
        heals = int(heal_info.get("heals", 0))
        world_info = info.get("world") or {}
        swept = int(world_info.get("swept_segments", 0))
        heal_swept = int(world_info.get("heal_swept_segments", 0))
        if heals:
            slot.breaker.record_heal(heals)
        if swept > heal_swept:
            # segments the run itself failed to release: hygiene drift
            slot.breaker.record_shm_leak(swept - heal_swept)
        elif not heals:
            slot.breaker.record_success()
        slot.jobs_done += 1
        self.admission.observe(job.cost_s, wall)
        self.admission.release(job, outcome="done")
        if ckpt_dir is not None:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        result = JobResult(
            matrix=matrix,
            info=info,
            # the resolved plan the run actually executed (verbatim from
            # the result), falling back to the admission plan for job
            # kinds whose info carries no plan record
            plan=info.get("plan") or job.plan.to_dict(),
            latency_s=time.monotonic() - job.submitted_at,
            queued_s=(job.started_at or t0) - job.submitted_at,
            heals=heals,
            cache_hit=job.cache_hit,
            slot=slot.slot_id,
        )
        job.finish(result)
        with self._lock:
            self._counters["completed"] += 1
            self._counters["heals"] += heals
            self._latencies.append(result.latency_s)

    # ------------------------------------------------------------------ #
    # execution per job kind
    # ------------------------------------------------------------------ #

    def _job_timeout(self, slot: GridSlot, job: Job) -> float:
        remaining = job.remaining_deadline()
        if remaining is None:
            return slot.timeout
        return min(slot.timeout, max(remaining, _MIN_RUN_TIMEOUT_S))

    def _execute(self, slot: GridSlot, job: Job):
        spec, plan = job.spec, job.plan
        kernel = KIND_KERNELS[spec.kind]
        timeout = self._job_timeout(slot, job)
        if spec.kind == "square_chain":
            return self._execute_chain(slot, job, timeout)
        # the admission plan becomes the executed plan: slot-owned knobs
        # (grid size, world, timeout) are grafted onto its spec, keeping a
        # single conversion point between service config and the run
        run = plan.with_spec(
            nprocs=slot.nprocs,
            suite="esc",
            semiring=spec.semiring,
            kernel=kernel,
            overlap=self.overlap,
            timeout=timeout,
            world=slot.world,
            transport=slot.transport,
        )
        runtime = {"tracker": slot.tracker}
        if spec.kind == "masked_spgemm":
            runtime["mask"] = spec.mask
        if spec.faults is not None:
            runtime["faults"] = spec.faults
        ckpt_dir = None
        if self.heal is not None and kernel == "spgemm":
            # crash transparency: per-job checkpoint subdir + online heal.
            # The job id joins the key so two concurrent identical jobs
            # can never adopt each other's manifests.
            from ..resilience.checkpoint import CheckpointManager

            key = run_key(
                spec.a, spec.b, kernel=kernel, batches=plan.batches,
                layers=plan.layers, nprocs=slot.nprocs, job=job.id,
            )
            ckpt_dir = CheckpointManager.run_dir(self.checkpoint_root, key)
            run = run.with_spec(
                heal=self.heal,
                world_spares=self.world_spares,
                checkpoint_dir=ckpt_dir,
                checkpoint_keep_last=self.checkpoint_keep_last,
            )
        result = run_plan(spec.a, spec.b, run, **runtime)
        return result.matrix, result.info, ckpt_dir

    def _execute_chain(self, slot: GridSlot, job: Job, timeout: float):
        """Iterated squaring (HipMCL's access pattern) on the *resident*
        context: distribute once, multiply/redistribute per round, gather
        at the end, and always free the handles — resident grids must not
        accumulate tiles across jobs."""
        spec, plan = job.spec, job.plan
        ctx = slot.context()
        prev_timeout, ctx.timeout = ctx.timeout, timeout
        handles = []
        try:
            ha = ctx.distribute(spec.a, layout="A")
            hb = ctx.distribute(spec.a, layout="B")
            handles += [ha, hb]
            info: dict = {}
            hc = ha
            for _ in range(int(spec.rounds)):
                hc, result = ctx.multiply(
                    ha, hb, batches=plan.batches, semiring=spec.semiring,
                )
                handles.append(hc)
                info = result.info
                ha = ctx.redistribute(hc, "A")
                hb = ctx.redistribute(hc, "B")
                handles += [ha, hb]
            matrix = ctx.gather(hc)
            return matrix, info, None
        finally:
            ctx.timeout = prev_timeout
            for h in handles:
                ctx.free(h)

    # ------------------------------------------------------------------ #
    # failure classification
    # ------------------------------------------------------------------ #

    def _classify_failure(self, slot: GridSlot, job: Job,
                          exc: ReproError) -> None:
        exc.with_context(tenant=job.spec.tenant, job=job.name,
                         slot=slot.slot_id)
        hang = isinstance(exc, HangError)
        if isinstance(exc, SpmdError):
            hang = any(
                isinstance(e, HangError) for e in exc.failures.values()
            )
        remaining = job.remaining_deadline()
        if hang and remaining is not None and remaining <= 0.05:
            # the watchdog fired because the job's remaining deadline was
            # installed as the region timeout and has now passed: that is
            # the deadline mechanism, not a service defect
            err = DeadlineExceededError(
                f"{job.name} exceeded its {job.spec.deadline_s:.3g}s "
                "deadline while running",
                phase="running", tenant=job.spec.tenant, job=job.name,
                deadline_s=job.spec.deadline_s,
            )
            err.__cause__ = exc
            self._finish_failed(job, err, state=EXPIRED)
            # a deadline kill still wedged/restarted the grid's region:
            # count it against the slot like a failure
            slot.breaker.record_failure()
            return
        slot.breaker.record_failure()
        self._finish_failed(job, exc)

    def _finish_failed(self, job: Job, exc: BaseException,
                       state: str = "failed") -> None:
        if not job.fail(exc, state=state):
            return
        self.admission.release(job, outcome=state)
        with self._lock:
            if state == EXPIRED:
                self._counters["expired"] += 1
            elif state == CANCELLED:
                self._counters["cancelled"] += 1
            else:
                self._counters["failed"] += 1

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    @staticmethod
    def _percentile(values: list[float], q: float) -> float | None:
        if not values:
            return None
        ordered = sorted(values)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            lats = list(self._latencies)
            uptime = (
                None if self._started_at is None
                else time.monotonic() - self._started_at
            )
        return {
            "uptime_s": uptime,
            "counters": counters,
            "throughput_jobs_per_s": (
                counters["completed"] / uptime if uptime else None
            ),
            "latency_s": {
                "p50": self._percentile(lats, 0.50),
                "p99": self._percentile(lats, 0.99),
                "max": max(lats) if lats else None,
                "n": len(lats),
            },
            "queue": {
                "depth": len(self.queue),
                "backlog_s": self.queue.backlog_seconds(),
            },
            "plan_cache": self.plan_cache.stats(),
            "admission": self.admission.stats(),
            "slots": self.pool.stats(),
        }
