"""Admission control: the paper's cost models as a gate, not a report.

``predict_makespan`` and Table III's ``predict_memory`` were built to
answer "does this run fit, and how long will it take" *before* the run
starts — which is exactly an admission predicate.  Every submitted job is
planned (through the :class:`~repro.serve.plan_cache.PlanCache`) and then
walked through an ordered series of gates; the first one that fails
raises :class:`~repro.errors.AdmissionRejected` with a classified
``reason`` + uniform ``err.context``.  Rejection at the door is the
design: an overloaded service answers every submit immediately — accept
or classified refusal — instead of letting queues collapse into timeouts.

Gate order (cheapest first, and each later gate assumes the earlier
ones passed):

1. ``shutdown`` — the service is draining;
2. ``unsupported`` — job kind / kernel combination not served;
3. ``queue-full`` — the tenant's bounded queue is at capacity;
4. ``overload`` — total queued modelled work exceeds the shed limit;
5. ``memory`` — the planner finds no (layers, batches) that fits the
   grid budget (:class:`~repro.errors.PlannerError` → classified);
6. ``tenant-budget`` — the job's predicted bytes would push the
   tenant's in-flight :class:`~repro.mem.MemoryLedger` past its budget;
7. ``deadline`` — predicted wait + predicted run time already exceed
   the job's deadline (admitting it could only burn capacity).

Wall-clock predictions calibrate online: modelled seconds are scaled by
an EWMA of observed (wall / modelled) ratios the service feeds back
after each completion, so the deadline gate sharpens as traffic flows
instead of trusting the α–β machine constants to be wall-accurate.
"""

from __future__ import annotations

import threading

from ..errors import AdmissionRejected, PlannerError
from ..mem import MemoryLedger
from .job import Job, JobSpec
from .plan_cache import PlanCache

#: the classified rejection taxonomy (``AdmissionRejected.reason``)
REJECT_REASONS = (
    "queue-full",
    "overload",
    "deadline",
    "tenant-budget",
    "memory",
    "unsupported",
    "shutdown",
)

#: job kind → local kernel planned/executed for it
KIND_KERNELS = {
    "multiply": "spgemm",
    "masked_spgemm": "masked_spgemm",
    "spmm": "spmm",
    "square_chain": "spgemm",
}


class TenantState:
    """Per-tenant accounting: an in-flight memory ledger plus counters."""

    def __init__(self, name: str, *, memory_budget: int | None = None) -> None:
        self.name = str(name)
        self.memory_budget = memory_budget
        #: charged with each in-flight job's predicted Table III bytes
        #: (per-category), released at completion — ``enforce="off"``
        #: because admission itself is the enforcement point (it raises
        #: the *classified* error, not the ledger's).
        self.ledger = MemoryLedger(
            rank=f"tenant:{name}", budget=memory_budget, enforce="off"
        )
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0

    def in_flight_bytes(self) -> int:
        return int(self.ledger.current_total)


class AdmissionController:
    """Plan + gate each arriving :class:`~repro.serve.job.JobSpec`."""

    def __init__(
        self,
        *,
        queue,
        plan_cache: PlanCache,
        nprocs: int,
        grids: int = 1,
        memory_budget: int | None = None,
        machine=None,
        backend: str = "dense",
        overlap: str = "off",
        max_backlog_s: float = 60.0,
        default_deadline_s: float | None = None,
    ) -> None:
        self.queue = queue
        self.plan_cache = plan_cache
        self.nprocs = int(nprocs)
        self.grids = max(1, int(grids))
        self.memory_budget = memory_budget
        self.machine = machine
        self.backend = backend
        self.overlap = overlap
        #: load-shedding threshold: queued modelled seconds beyond which
        #: new work is refused outright (keeps accepted-job latency
        #: bounded by construction)
        self.max_backlog_s = float(max_backlog_s)
        self.default_deadline_s = default_deadline_s
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantState] = {}
        #: EWMA of wall_seconds / modelled_seconds; None until the first
        #: completion calibrates it
        self._wall_ratio: float | None = None
        self.rejections: dict[str, int] = dict.fromkeys(REJECT_REASONS, 0)

    # ------------------------------------------------------------------ #
    # tenants
    # ------------------------------------------------------------------ #

    def tenant(self, name: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = self._tenants[name] = TenantState(name)
            return state

    def register_tenant(self, name: str, *,
                        memory_budget: int | None = None) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
            if state is None or state.memory_budget != memory_budget:
                state = TenantState(name, memory_budget=memory_budget)
                self._tenants[name] = state
            return state

    def tenants(self) -> dict[str, TenantState]:
        with self._lock:
            return dict(self._tenants)

    # ------------------------------------------------------------------ #
    # calibration feedback (service calls this on every completion)
    # ------------------------------------------------------------------ #

    def observe(self, modelled_s: float, wall_s: float) -> None:
        if modelled_s <= 0 or wall_s <= 0:
            return
        ratio = wall_s / modelled_s
        with self._lock:
            if self._wall_ratio is None:
                self._wall_ratio = ratio
            else:
                self._wall_ratio = 0.7 * self._wall_ratio + 0.3 * ratio

    def wall_estimate(self, modelled_s: float) -> float | None:
        """Modelled seconds → calibrated wall seconds (``None`` before
        the first completion calibrates the ratio)."""
        with self._lock:
            if self._wall_ratio is None:
                return None
            return modelled_s * self._wall_ratio

    # ------------------------------------------------------------------ #
    # the gate
    # ------------------------------------------------------------------ #

    def _reject(self, reason: str, spec: JobSpec, message: str,
                **extra) -> AdmissionRejected:
        state = self.tenant(spec.tenant)
        state.rejected += 1
        with self._lock:
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
        err = AdmissionRejected(
            message, reason=reason, tenant=spec.tenant,
            job=spec.label or spec.kind,
        )
        return err.with_context(**extra) if extra else err

    def admit(self, spec: JobSpec, *, shutting_down: bool = False) -> Job:
        """Run every gate; returns a planned, tenant-charged
        :class:`~repro.serve.job.Job` ready to enqueue, or raises
        :class:`~repro.errors.AdmissionRejected`."""
        state = self.tenant(spec.tenant)
        state.submitted += 1
        if shutting_down:
            raise self._reject(
                "shutdown", spec, "service is draining; not accepting jobs"
            )
        kernel = KIND_KERNELS.get(spec.kind)
        if kernel is None:
            raise self._reject(
                "unsupported", spec,
                f"job kind {spec.kind!r} is not served", kind=spec.kind,
            )

        # 3. per-tenant bounded queue
        depth = self.queue.depth(spec.tenant)
        cap = self.queue.capacity_of(spec.tenant)
        if depth >= cap:
            raise self._reject(
                "queue-full", spec,
                f"tenant {spec.tenant!r} already has {depth} queued jobs "
                f"(capacity {cap})", depth=depth, capacity=cap,
            )

        # 4. service-wide load shedding on modelled backlog
        backlog_s = self.queue.backlog_seconds() / self.grids
        if backlog_s > self.max_backlog_s:
            raise self._reject(
                "overload", spec,
                f"predicted backlog {backlog_s:.3g}s per grid exceeds the "
                f"shed limit {self.max_backlog_s:.3g}s",
                backlog_s=backlog_s, max_backlog_s=self.max_backlog_s,
            )

        # 5. feasibility: the Alg. 3 memory test via the plan cache
        budget = spec.memory_budget or self.memory_budget
        try:
            plan, hit = self.plan_cache.plan(
                spec.a, spec.b,
                nprocs=self.nprocs,
                memory_budget=budget,
                kernel=kernel,
                backend=self.backend,
                overlap=self.overlap,
                mask=spec.mask,
                machine=self.machine,
            )
        except (PlannerError, ValueError) as exc:
            raise self._reject(
                "memory", spec,
                f"no feasible (layers, batches) configuration: {exc}",
                memory_budget=budget, nprocs=self.nprocs,
            ) from exc

        cost_s = float(plan.predicted_seconds)
        if spec.kind == "square_chain":
            cost_s *= max(1, int(spec.rounds))

        # 6. tenant in-flight memory budget (aggregate bytes over the grid)
        job_bytes = self._job_bytes(spec, plan)
        if state.memory_budget is not None:
            in_flight = state.in_flight_bytes()
            if in_flight + job_bytes > state.memory_budget:
                raise self._reject(
                    "tenant-budget", spec,
                    f"job needs ~{job_bytes} B with {in_flight} B already "
                    f"in flight; tenant budget is {state.memory_budget} B",
                    job_bytes=job_bytes, in_flight_bytes=in_flight,
                    tenant_budget=state.memory_budget,
                )

        # 7. deadline feasibility under the calibrated wall model
        deadline = spec.deadline_s
        if deadline is None:
            deadline = self.default_deadline_s
            if deadline is not None:
                spec.deadline_s = deadline
        if deadline is not None:
            predicted_wall = self.wall_estimate(backlog_s + cost_s)
            if predicted_wall is not None and predicted_wall > deadline:
                raise self._reject(
                    "deadline", spec,
                    f"predicted wait+run {predicted_wall:.3g}s exceeds the "
                    f"{deadline:.3g}s deadline",
                    predicted_s=predicted_wall, deadline_s=deadline,
                )

        charge = self._charge(state, spec, plan, job_bytes)
        state.accepted += 1
        return Job(
            spec, plan=plan, cache_hit=hit, cost_s=cost_s, charge=charge,
            plan_key=self.plan_cache.key(
                spec.a, spec.b, nprocs=self.nprocs, memory_budget=budget,
                kernel=kernel, backend=self.backend, overlap=self.overlap,
                mask=spec.mask,
            ),
        )

    # ------------------------------------------------------------------ #

    def _job_bytes(self, spec: JobSpec, plan) -> int:
        """Aggregate bytes this job is predicted to hold in flight:
        Table III's per-process high water × nprocs when the plan carried
        a memory prediction, else the operands' own footprint."""
        pm = getattr(plan, "predicted_memory", None)
        if pm and pm.get("high_water_total"):
            return int(pm["high_water_total"]) * self.nprocs
        total = int(getattr(spec.a, "nbytes", 0))
        b = spec.b
        if b is not None and b is not spec.a:
            nb = getattr(b, "nbytes", None)
            total += int(nb if nb is not None else 0)
        return total

    def _charge(self, state: TenantState, spec: JobSpec, plan,
                job_bytes: int):
        """Charge the tenant ledger for the job's predicted footprint.

        Uses the plan's per-category Table III breakdown (aggregate =
        per-process × nprocs) so tenant reports read in the same
        categories as every ``info["memory"]`` block; falls back to one
        ``output_batch`` charge when the plan carried no prediction."""
        pm = getattr(plan, "predicted_memory", None)
        allocs = []
        label = spec.label or spec.kind
        if pm and pm.get("categories"):
            for cat, val in pm["categories"].items():
                nbytes = int(val["high_water"] if isinstance(val, dict) else val)
                if nbytes > 0:
                    allocs.append(state.ledger.acquire(
                        cat, nbytes * self.nprocs, label=label
                    ))
        if not allocs:
            allocs.append(
                state.ledger.acquire("output_batch", job_bytes, label=label)
            )
        return allocs

    def release(self, job: Job, *, outcome: str) -> None:
        """Return the tenant's in-flight charge when a job terminates."""
        state = self.tenant(job.spec.tenant)
        for alloc in job.charge or ():
            state.ledger.release(alloc)
        job.charge = None
        if outcome == "done":
            state.completed += 1
        else:
            state.failed += 1

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            tenants = dict(self._tenants)
            ratio = self._wall_ratio
            rejections = dict(self.rejections)
        return {
            "wall_ratio": ratio,
            "max_backlog_s": self.max_backlog_s,
            "rejections": rejections,
            "tenants": {
                name: {
                    "submitted": st.submitted,
                    "accepted": st.accepted,
                    "rejected": st.rejected,
                    "completed": st.completed,
                    "failed": st.failed,
                    "in_flight_bytes": st.in_flight_bytes(),
                    "memory_budget": st.memory_budget,
                }
                for name, st in tenants.items()
            },
        }
