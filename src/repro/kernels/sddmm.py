"""SDDMM: sampled dense-dense matrix multiplication (the ALS kernel).

``C = S ∘ (A ⊗ B)`` for dense factor panels A (m × k) and B (k × n) and
a sparse sampling pattern S — only the dot products S stores are ever
computed.  S is the aux operand, distributed like the *output* (rows
with A's row blocks, columns with each batch's column blocks), exactly
as Bharadwaj–Buluç–Demmel replicate the sparse operand along the
dataflow that already routes the output.

Stage structure: each stage holds a slice of the inner dimension, so a
stage computes the sampled partial dots over its k-block and multiplies
by S's values immediately — ``s ∘ (Σ_stages d_stage) = Σ_stages
(s ∘ d_stage)`` for any semiring whose ``mul`` distributes over ``add``
(every registered semiring except ``plus_pair``, whose pair-count
``mul`` is not distributive; see DESIGN.md).  Every stage partial then
carries the full S-block pattern, so merging is element-wise
accumulation over identical patterns — no re-hashing — and the fiber
exchange ships column slices of that same pattern.

:attr:`incremental_only` is set for the same reason as SpMM: partials
are as large as the output block, so holding one per stage under
deferred merging would multiply the footprint by the stage count.
"""

from __future__ import annotations

import numpy as np

from ..grid.grid3d import ProcGrid3D
from ..sparse.matrix import SparseMatrix
from ..sparse.semiring import Semiring
from .base import (
    LocalKernel,
    batch_cols_max,
    dense_tile_bytes_max,
    operand_shape,
    rows_block_max,
    shape_memory_block,
)

__all__ = ["SddmmKernel", "sddmm_local"]


def sddmm_local(
    s: SparseMatrix, a: np.ndarray, b: np.ndarray, semiring: Semiring
) -> SparseMatrix:
    """``s ∘ (a ⊗ b)`` on the pattern of ``s`` (a: m × k, b: k × n)."""
    if s.nnz == 0:
        return s
    rows = s.rowidx
    cols = s.col_indices()
    if a.shape[1] == 0:
        dots = np.full(s.nnz, float(semiring.add_identity))
    elif semiring.add is np.add and semiring.mul is np.multiply:
        dots = np.einsum("nk,kn->n", a[rows], b[:, cols])
    else:
        prod = np.asarray(semiring.mul(a[rows], b[:, cols].T), dtype=float)
        dots = semiring.add.reduce(prod, axis=1)
    vals = np.asarray(semiring.mul(s.values, dots), dtype=float)
    return SparseMatrix(
        s.nrows, s.ncols, s.indptr, s.rowidx, vals,
        sorted_within_columns=s.sorted_within_columns, validate=False,
    )


def _accumulate(parts: list, semiring: Semiring) -> SparseMatrix:
    """Element-wise accumulation over identical sparsity patterns."""
    base = parts[0]
    vals = base.values
    for part in parts[1:]:
        vals = semiring.add(vals, part.values)
    return SparseMatrix(
        base.nrows, base.ncols, base.indptr, base.rowidx,
        np.asarray(vals, dtype=float),
        sorted_within_columns=base.sorted_within_columns, validate=False,
    )


class SddmmKernel(LocalKernel):
    """Dense A × dense B sampled by sparse S → sparse output."""

    name = "sddmm"
    a_kind = "dense"
    b_kind = "dense"
    aux_kind = "sparse"
    aux_mode = "required"
    output_kind = "sparse"
    incremental_only = True
    supports_symbolic = False

    def stage_multiply(self, state):
        return sddmm_local(state.aux_batch, state.a_recv, state.b_recv, state.semiring)

    def merge(self, parts, state):
        return _accumulate(parts, state.semiring)

    # ------------------------------------------------------------------ #
    # memory model: dense panels + the sampled pattern's nonzeros
    # ------------------------------------------------------------------ #

    def predict_memory(
        self, a, b, aux=None, *, nprocs, layers, batches,
        keep_output=True, overlap="off",
    ):
        grid = ProcGrid3D(nprocs, layers)
        am, ak = operand_shape(a)
        bk, bn = operand_shape(b)
        bpn = 24
        rows_loc = rows_block_max(am, grid)
        cols_batch = batch_cols_max(bn, grid, batches)
        if isinstance(aux, SparseMatrix):
            # worst per-rank-per-batch slice of S, bounded by the widest
            # row block crossed with the widest batch column block; the
            # load-imbalance allowance only applies once S is actually
            # split across ranks
            skew = 1.0 if nprocs == 1 else 1.3
            density = aux.nnz / max(am * bn, 1)
            s_nnz = int(np.ceil(skew * density * rows_loc * cols_batch)) + 1
            s_held = int(np.ceil(skew * aux.nnz / nprocs)) + 1
        else:
            s_nnz = s_held = rows_loc * cols_batch

        a_piece = dense_tile_bytes_max(am, ak, grid, "A")
        b_piece = dense_tile_bytes_max(bk, bn, grid, "B")
        panel_a = rows_loc * int(np.ceil(ak / max(grid.pc * layers, 1))) * 8
        panel_b = rows_block_max(bk, grid) * cols_batch * 8
        recv = panel_a + panel_b
        if overlap == "depth1":
            recv *= 2
        if layers > 1:
            recv += bpn * s_nnz
        scratch = 2 * bpn * s_nnz  # accumulator + incoming stage partial
        held = bpn * s_held
        return shape_memory_block(
            {
                "a_piece": a_piece,
                "b_piece": b_piece + bpn * s_nnz,  # S block rides with inputs
                "recv_buffer": recv,
                "merge_scratch": scratch,
                "output_batch": bpn * s_held // max(batches, 1),
            },
            held=held,
            transient=recv + scratch,
            batches=batches,
            keep_output=keep_output,
            params={
                "kernel": self.name, "nprocs": nprocs, "layers": layers,
                "batches": batches, "inner_dim": ak, "overlap": overlap,
            },
        )
