"""SpGEMM kernels: the paper's workload, plus the output-masked variant.

:class:`SpgemmKernel` is the default and reproduces the pre-seam
behaviour bit-for-bit: stage products via the configured
:class:`~repro.sparse.spgemm.suite.KernelSuite` and merges via the
suite's merge routine — the exact calls the execution plan used to make
inline.

:class:`MaskedSpgemmKernel` computes ``mask ∘ (A ⊗ B)`` by running
:func:`repro.sparse.spgemm.masked.spgemm_masked` at every stage against
the batch's block of the mask (the aux operand, distributed like the
output).  Stage partials then carry only masked entries, so the merge
(plain suite merge — duplicate column/row keys sum under the semiring's
add) never materialises unmasked intermediates: the memory win of masked
SpGEMM survives distribution.  When no mask is supplied the driver
synthesises one from the symbolic pass — ``symbolic3d``'s structure
prediction becomes the mask-producing prologue
(:func:`repro.sparse.spgemm.symbolic.symbolic_pattern`).
"""

from __future__ import annotations

from ..sparse.spgemm.masked import spgemm_masked
from .base import LocalKernel

__all__ = ["MaskedSpgemmKernel", "SpgemmKernel"]


class SpgemmKernel(LocalKernel):
    """Sparse × sparse → sparse (the paper's Alg. 4 local kernel)."""

    name = "spgemm"

    def stage_multiply(self, state):
        return state.suite.local_multiply(state.a_recv, state.b_recv, state.semiring)

    def merge(self, parts, state):
        return state.suite.merge(parts, state.semiring)


class MaskedSpgemmKernel(SpgemmKernel):
    """Sparse × sparse → sparse, restricted to a sparse output mask.

    ``complement=True`` keeps entries *outside* the mask instead (the
    anti-mask form used by e.g. triangle-free fill-in analysis).
    """

    name = "masked_spgemm"
    aux_kind = "sparse"
    # the driver may synthesise the mask from the symbolic pass when the
    # caller does not supply one.
    aux_mode = "optional"

    def __init__(self, complement: bool = False) -> None:
        self.complement = bool(complement)

    def stage_multiply(self, state):
        return spgemm_masked(
            state.a_recv,
            state.b_recv,
            state.aux_batch,
            state.semiring,
            complement=self.complement,
        )
