"""SpMM: sparse × dense → dense (the GNN-propagation kernel).

The B operand is a dense feature panel distributed under the same
nested (row × layer, column) layout as sparse B; the output is a dense
block per rank.  Three kernel-declared deviations from SpGEMM matter:

* **dense-aware shipping** — B panels and fiber pieces are plain
  ndarrays, which both comm backends ship whole (collectives even under
  ``comm_backend="sparse"``; dense rows cannot be thinned by a nonzero
  mask) and the shm transport moves zero-copy;
* **incremental accumulation** — :attr:`incremental_only` forces
  ``merge_policy="incremental"``: a dense accumulator plus one incoming
  stage block stay resident instead of one dense partial per stage
  (deferred merging would scale the footprint by ``sqrt(p/l)``);
* **exact memory model** — dense footprints need no symbolic pass, so
  :meth:`predict_memory` computes the per-category bytes from the grid
  geometry directly (the dense analogue of Table III).

Local compute is CSC-A scatter-accumulate: for every stored ``a[i, k]``,
``out[i, :] ⊕= a[i, k] ⊗ x[k, :]`` via ``ufunc.at`` — any semiring whose
add/mul are real ufuncs works (``plus_times`` takes the fused
``np.add.at`` fast path; ``plus_pair``'s object-dtype mul does not).
"""

from __future__ import annotations

import numpy as np

from ..grid.grid3d import ProcGrid3D
from ..sparse.matrix import SparseMatrix
from ..sparse.semiring import Semiring
from .base import (
    LocalKernel,
    batch_cols_max,
    dense_tile_bytes_max,
    layer_block_max,
    operand_shape,
    rows_block_max,
    shape_memory_block,
    sparse_tile_nnz_max,
)

__all__ = ["SpmmKernel", "spmm_local"]


def spmm_local(a: SparseMatrix, x: np.ndarray, semiring: Semiring) -> np.ndarray:
    """Dense ``a ⊗ x`` for CSC ``a`` (m × k) and dense ``x`` (k × f)."""
    m = a.nrows
    f = int(x.shape[1])
    out = np.full((m, f), float(semiring.add_identity))
    if a.nnz == 0:
        return out
    cols = a.col_indices()
    if semiring.add is np.add and semiring.mul is np.multiply:
        np.add.at(out, a.rowidx, a.values[:, None] * x[cols])
    else:
        prod = np.asarray(semiring.mul(a.values[:, None], x[cols]), dtype=float)
        semiring.add.at(out, a.rowidx, prod)
    return out


class SpmmKernel(LocalKernel):
    """Sparse A × dense B → dense C under the batched 3D schedule."""

    name = "spmm"
    b_kind = "dense"
    output_kind = "dense"
    incremental_only = True
    supports_symbolic = False

    def stage_multiply(self, state):
        return spmm_local(state.a_recv, state.b_recv, state.semiring)

    def merge(self, parts, state):
        out = parts[0]
        for part in parts[1:]:
            out = state.semiring.add(out, part)
        return np.asarray(out, dtype=float)

    # ------------------------------------------------------------------ #
    # memory model: exact dense geometry, no symbolic pass needed
    # ------------------------------------------------------------------ #

    def predict_memory(
        self, a, b, aux=None, *, nprocs, layers, batches,
        keep_output=True, overlap="off",
    ):
        grid = ProcGrid3D(nprocs, layers)
        am, ak = operand_shape(a)
        bk, bn = operand_shape(b)
        bpn = 24  # r: bytes per sparse nonzero (matrix.py accounting)
        if isinstance(a, SparseMatrix):
            a_nnz = sparse_tile_nnz_max(a, grid, "A")
        else:  # TileSource: balanced estimate with the standard skew factor
            a_nnz = int(np.ceil(1.3 * getattr(a, "nnz", am) / nprocs))
        rows_loc = rows_block_max(am, grid)
        cols_batch = batch_cols_max(bn, grid, batches)
        cols_piece = layer_block_max(bn, grid, batches)

        a_piece = bpn * a_nnz
        b_piece = dense_tile_bytes_max(bk, bn, grid, "B")
        panel = rows_block_max(bk, grid) * cols_batch * 8  # one stage's B panel
        block = rows_loc * cols_batch * 8  # one dense C accumulator block
        recv = bpn * a_nnz + panel
        if overlap == "depth1":
            recv *= 2
        if layers > 1:
            recv += rows_loc * cols_piece * 8 * max(layers - 1, 1)
        # incremental merge: accumulator + incoming stage block
        scratch = 2 * block
        held = rows_loc * cols_piece * 8 * batches
        return shape_memory_block(
            {
                "a_piece": a_piece,
                "b_piece": b_piece,
                "recv_buffer": recv,
                "merge_scratch": scratch,
                "output_batch": rows_loc * cols_piece * 8,
            },
            held=held,
            transient=recv + scratch,
            batches=batches,
            keep_output=keep_output,
            params={
                "kernel": self.name, "nprocs": nprocs, "layers": layers,
                "batches": batches, "features": bn, "overlap": overlap,
            },
        )
