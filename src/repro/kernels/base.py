"""The ``LocalKernel`` seam: what happens at a SUMMA stage is pluggable.

The batched 3D SUMMA dataflow (broadcast operand panels along the row and
column communicators, compute a stage-local product, accumulate across
stages, exchange partial fibers across layers) is not SpGEMM-specific —
Bharadwaj–Buluç–Demmel show the same communication schedule carries SpMM
and SDDMM, the kernels behind GNN propagation and ALS factorisation.  A
:class:`LocalKernel` captures everything the execution plan needs to know
about one such workload:

* **operand kinds** — whether A, B, the optional third operand (``aux``:
  a mask for masked SpGEMM, the sampling pattern for SDDMM) and the
  output are sparse (:class:`~repro.sparse.SparseMatrix`) or dense
  (2-D ``numpy.ndarray``).  Kinds drive tile extraction, batch column
  selection, the fiber split, final assembly — and which communication
  path a panel takes (dense operands ride collectives even under the
  sparse backend; see :mod:`repro.comm.sparse_p2p`);
* **stage-local compute** — :meth:`stage_multiply`;
* **merge/accumulate rule** — :meth:`merge`, with
  :attr:`incremental_only` forcing per-stage accumulation for kernels
  whose natural accumulator is a dense block (holding every stage's
  dense partial would multiply the footprint by the stage count);
* **per-category memory estimate** — :meth:`predict_memory` /
  :meth:`batches_for_budget`, the kernel's analogue of the paper's
  Table III closed form.

The *operand protocol* also lives here: :class:`TileSource` (already
distributed per-rank tiles, the :class:`repro.dist.DistContext`
mechanism) and :func:`resolve_tile` (global-matrix extraction under the
3D distribution) replace the ``TileSource`` / ``_operand_tile`` pair the
SUMMA drivers used to re-implement; :mod:`repro.summa.core` re-exports
them for compatibility.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import DistributionError, ShapeError
from ..grid.distribution import (
    a_tile_range,
    b_tile_range,
    gather_dense_tiles,
    gather_tiles,
)
from ..grid.grid3d import ProcGrid3D
from ..sparse.matrix import SparseMatrix
from ..sparse.ops import col_select, col_slice, submatrix

__all__ = [
    "OPERAND_KINDS",
    "LocalKernel",
    "TileSource",
    "available_kernels",
    "get_kernel",
    "operand_shape",
    "resolve_tile",
]

#: the two operand kinds a kernel may declare per operand.
OPERAND_KINDS = ("sparse", "dense")


class TileSource:
    """An operand whose tiles are already distributed.

    The SPMD core normally extracts each rank's tile from a global
    operand (the simulation stand-in for pre-distributed data).  A
    ``TileSource`` instead hands the core per-rank tiles directly — the
    mechanism behind :class:`repro.dist.DistContext`, where matrices
    persist across multiplications without re-extraction.  Tiles may be
    sparse or dense; the kernel's declared operand kind is authoritative.
    """

    __slots__ = ("nrows", "ncols", "_getter")

    def __init__(self, nrows: int, ncols: int, getter) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self._getter = getter

    def tile(self, rank: int):
        return self._getter(rank)


def operand_shape(operand) -> tuple[int, int]:
    """Global ``(nrows, ncols)`` of an operand in any accepted form."""
    if isinstance(operand, (TileSource, SparseMatrix)):
        return (operand.nrows, operand.ncols)
    shape = getattr(operand, "shape", None)
    if shape is not None and len(shape) == 2:
        return (int(shape[0]), int(shape[1]))
    raise ShapeError(
        f"operand {type(operand).__name__} is not a SparseMatrix, a 2-D "
        "ndarray, or a TileSource"
    )


def _dense_tile(operand: np.ndarray, grid: ProcGrid3D, rank: int, which: str):
    i, j, k = grid.coords(rank)
    nrows, ncols = operand.shape
    if which == "A":
        r0, r1, c0, c1 = a_tile_range(grid, nrows, ncols, i, j, k)
    else:
        r0, r1, c0, c1 = b_tile_range(grid, nrows, ncols, i, j, k)
    return np.ascontiguousarray(operand[r0:r1, c0:c1])


def resolve_tile(operand, grid: ProcGrid3D, rank: int, which: str, kind: str):
    """The operand protocol: a rank's tile of ``operand`` under the 3D
    distribution (``which`` = ``"A"`` or ``"B"``), honouring the declared
    operand ``kind``.  :class:`TileSource` operands hand out their own
    tiles; global operands are extracted."""
    if isinstance(operand, TileSource):
        return operand.tile(rank)
    if kind == "sparse":
        if not isinstance(operand, SparseMatrix):
            raise ShapeError(
                f"operand {which} must be a SparseMatrix for this kernel, "
                f"got {type(operand).__name__}"
            )
        from ..grid.distribution import extract_a_tile, extract_b_tile

        fn = extract_a_tile if which == "A" else extract_b_tile
        return fn(operand, grid, rank)
    if isinstance(operand, SparseMatrix):
        raise ShapeError(
            f"operand {which} must be a dense 2-D ndarray for this kernel, "
            "got a SparseMatrix (densify or pick a sparse kernel)"
        )
    arr = np.asarray(operand)
    if arr.ndim != 2:
        raise ShapeError(
            f"operand {which} must be a 2-D ndarray, got shape {arr.shape}"
        )
    return _dense_tile(arr, grid, rank, which)


def _select_columns(tile, local_cols):
    if isinstance(tile, SparseMatrix):
        return col_select(tile, local_cols)
    return np.ascontiguousarray(tile[:, local_cols])


def _slice_columns(tile, start: int, stop: int):
    if isinstance(tile, SparseMatrix):
        return col_slice(tile, start, stop)
    return tile[:, start:stop]


class LocalKernel(ABC):
    """One distributed workload expressed against the SUMMA dataflow.

    Subclasses declare operand kinds as class attributes and implement
    the two compute hooks; everything geometric (tile extraction, batch
    column selection, fiber splitting, final assembly) is derived from
    the kinds by the base class.  Kernel instances hold no per-run state
    and may be shared across ranks.
    """

    #: registry key, recorded in plans and ``info["kernel"]``.
    name: str = ""
    #: operand kinds ("sparse" or "dense").
    a_kind: str = "sparse"
    b_kind: str = "sparse"
    #: kind of the optional third operand; ``None`` when the kernel has
    #: none.  The aux operand is distributed like the *output* (rows with
    #: A's row blocks, columns with the batch's column blocks).
    aux_kind: str | None = None
    output_kind: str = "sparse"
    #: ``None`` (no aux), ``"required"`` (must be passed) or
    #: ``"optional"`` (the driver may synthesise one — masked SpGEMM
    #: falls back to the symbolic pass's product pattern).
    aux_mode: str | None = None
    #: force per-stage accumulation regardless of ``merge_policy`` —
    #: kernels with dense accumulators must never hold one partial per
    #: stage (that would scale the footprint by ``sqrt(p/l)``).
    incremental_only: bool = False
    #: whether Alg. 3's sparse symbolic pass applies to this kernel's
    #: operands (requires sparse A and B).
    supports_symbolic: bool = True

    # ------------------------------------------------------------------ #
    # operand protocol
    # ------------------------------------------------------------------ #

    @property
    def operand_kinds(self) -> dict:
        """The declared kinds, keyed ``a`` / ``b`` / ``aux`` / ``output``."""
        return {
            "a": self.a_kind,
            "b": self.b_kind,
            "aux": self.aux_kind,
            "output": self.output_kind,
        }

    @property
    def uses_aux(self) -> bool:
        return self.aux_mode is not None

    def validate(self, a, b, aux=None) -> tuple[int, int]:
        """Check operand shapes; return the product shape ``(m, n)``."""
        am, ak = operand_shape(a)
        bk, bn = operand_shape(b)
        if ak != bk:
            raise ShapeError(
                f"cannot multiply {am}x{ak} by {bk}x{bn} (kernel {self.name})"
            )
        if self.uses_aux:
            if aux is None:
                if self.aux_mode == "required":
                    raise ValueError(
                        f"kernel {self.name!r} requires its aux operand "
                        "(the sampling pattern / mask)"
                    )
            else:
                xm, xn = operand_shape(aux)
                if (xm, xn) != (am, bn):
                    raise ShapeError(
                        f"aux shape {(xm, xn)} != product shape {(am, bn)} "
                        f"(kernel {self.name})"
                    )
        elif aux is not None:
            raise ValueError(f"kernel {self.name!r} takes no aux operand")
        return (am, bn)

    def a_tile(self, a, grid: ProcGrid3D, rank: int):
        """This rank's A tile (rows split by ``pr``; columns nested)."""
        return resolve_tile(a, grid, rank, "A", self.a_kind)

    def b_tile(self, b, grid: ProcGrid3D, rank: int):
        """This rank's B tile (rows nested; columns split by ``pc``)."""
        return resolve_tile(b, grid, rank, "B", self.b_kind)

    def prepare_tiles(self, a_tile, b_tile, suite):
        """Suite-conditioned tile preparation (sparse input sorting)."""
        if suite is not None and suite.requires_sorted_inputs:
            if isinstance(a_tile, SparseMatrix):
                a_tile = a_tile.sort_indices()
            if isinstance(b_tile, SparseMatrix):
                b_tile = b_tile.sort_indices()
        return a_tile, b_tile

    def aux_block(self, aux, r0: int, r1: int, global_cols: np.ndarray):
        """The aux operand restricted to a rank's output block for one
        batch: rows ``[r0, r1)`` (the rank's A row block — identical at
        every stage) × the batch's global columns, in batch-local
        column order."""
        if isinstance(aux, SparseMatrix):
            rows = submatrix(aux, r0, r1, 0, aux.ncols)
            return col_select(rows, global_cols)
        return np.ascontiguousarray(aux[r0:r1][:, global_cols])

    # ------------------------------------------------------------------ #
    # geometry helpers (kind-dispatched, rarely overridden)
    # ------------------------------------------------------------------ #

    @staticmethod
    def nrows_of(x) -> int:
        return operand_shape(x)[0]

    @staticmethod
    def ncols_of(x) -> int:
        return operand_shape(x)[1]

    def select_columns(self, tile, local_cols):
        """A batch's column block of the B tile."""
        return _select_columns(tile, local_cols)

    def slice_columns(self, tile, start: int, stop: int):
        """A contiguous column slice of a layer result (fiber split)."""
        return _slice_columns(tile, start, stop)

    def finalize_tile(self, tile):
        """Final per-batch output canonicalisation (Sec. IV-D: only the
        *final* output needs sorting; dense blocks need contiguity for
        zero-copy shipping)."""
        if isinstance(tile, SparseMatrix):
            return tile.sort_indices()
        return np.ascontiguousarray(tile)

    def gather(self, nrows: int, ncols: int, pieces):
        """Assemble a global output from ``(r0, c0, tile)`` pieces."""
        if self.output_kind == "sparse":
            return gather_tiles(nrows, ncols, pieces)
        return gather_dense_tiles(nrows, ncols, pieces)

    # ------------------------------------------------------------------ #
    # compute hooks
    # ------------------------------------------------------------------ #

    @abstractmethod
    def stage_multiply(self, state):
        """One stage's local product from ``state.a_recv`` /
        ``state.b_recv`` (and ``state.aux_batch`` when the kernel has an
        aux operand).  Must not mutate the received operands — the
        threaded world shares broadcast payloads by reference."""

    @abstractmethod
    def merge(self, parts: list, state):
        """Combine stage partials (Merge-Layer) or fiber pieces
        (Merge-Fiber) into one block under ``state.semiring``."""

    # ------------------------------------------------------------------ #
    # memory model hooks
    # ------------------------------------------------------------------ #

    def predict_memory(
        self, a, b, aux=None, *, nprocs: int, layers: int, batches: int,
        keep_output: bool = True, overlap: str = "off",
    ) -> dict | None:
        """Per-category per-process footprint estimate, shaped like
        :func:`repro.model.memory.predict_memory` output.  ``None`` means
        the kernel defers to the Table III SpGEMM closed form (which
        needs symbolic statistics)."""
        return None

    def batches_for_budget(
        self, a, b, aux=None, *, nprocs: int, layers: int, memory_budget: int,
    ) -> int:
        """Smallest batch count whose predicted footprint fits the
        per-process share of the aggregate ``memory_budget``.  Default:
        doubling search over :meth:`predict_memory` (kernels without a
        model run unbatched)."""
        _, ncols = operand_shape(b)
        per_proc = memory_budget / max(nprocs, 1)
        batches = 1
        while batches < max(ncols, 1):
            predicted = self.predict_memory(
                a, b, aux, nprocs=nprocs, layers=layers, batches=batches,
                keep_output=False,
            )
            if predicted is None:
                return 1
            if predicted["high_water_total"] <= per_proc:
                break
            batches = min(batches * 2, max(ncols, 1))
        return batches

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def _max_block(bounds) -> int:
    """Largest block width of a ``split_bounds`` boundary array."""
    diffs = np.diff(np.asarray(bounds))
    return int(diffs.max()) if diffs.size else 0


def dense_tile_bytes_max(
    nrows: int, ncols: int, grid: ProcGrid3D, which: str, itemsize: int = 8,
) -> int:
    """Largest per-rank dense tile, in bytes, under the A or B layout."""
    worst = 0
    for rank in range(grid.nprocs):
        i, j, k = grid.coords(rank)
        if which == "A":
            r0, r1, c0, c1 = a_tile_range(grid, nrows, ncols, i, j, k)
        else:
            r0, r1, c0, c1 = b_tile_range(grid, nrows, ncols, i, j, k)
        worst = max(worst, (r1 - r0) * (c1 - c0))
    return worst * itemsize


def sparse_tile_nnz_max(
    matrix: SparseMatrix, grid: ProcGrid3D, which: str,
) -> int:
    """Exact max per-rank tile nonzero count under the A or B layout."""
    rows = matrix.rowidx
    cols = matrix.col_indices()
    worst = 0
    for rank in range(grid.nprocs):
        i, j, k = grid.coords(rank)
        if which == "A":
            r0, r1, c0, c1 = a_tile_range(
                grid, matrix.nrows, matrix.ncols, i, j, k
            )
        else:
            r0, r1, c0, c1 = b_tile_range(
                grid, matrix.nrows, matrix.ncols, i, j, k
            )
        count = int(np.count_nonzero(
            (rows >= r0) & (rows < r1) & (cols >= c0) & (cols < c1)
        ))
        worst = max(worst, count)
    return worst


def batch_cols_max(
    ncols: int, grid: ProcGrid3D, batches: int, scheme: str = "block-cyclic",
) -> int:
    """Largest per-rank batch column-block width (all layer blocks of one
    batch within the widest column super-block)."""
    from ..grid.distribution import batch_layer_blocks
    from ..sparse.ops import split_bounds

    super_w = _max_block(split_bounds(ncols, grid.pc))
    worst = 0
    for batch in range(batches):
        blocks = batch_layer_blocks(super_w, batches, grid.layers, batch, scheme)
        worst = max(worst, sum(e - s for s, e in blocks))
    return worst


def layer_block_max(
    ncols: int, grid: ProcGrid3D, batches: int, scheme: str = "block-cyclic",
) -> int:
    """Largest single layer block width of any batch (the post-fiber
    output piece's column count)."""
    from ..grid.distribution import batch_layer_blocks
    from ..sparse.ops import split_bounds

    super_w = _max_block(split_bounds(ncols, grid.pc))
    worst = 0
    for batch in range(batches):
        blocks = batch_layer_blocks(super_w, batches, grid.layers, batch, scheme)
        worst = max(worst, max((e - s for s, e in blocks), default=0))
    return worst


def rows_block_max(nrows: int, grid: ProcGrid3D) -> int:
    """Largest A/C row block height."""
    from ..sparse.ops import split_bounds

    return _max_block(split_bounds(nrows, grid.pr))


def shape_memory_block(
    categories: dict, *, held: int, transient: int, batches: int,
    keep_output: bool, params: dict,
) -> dict:
    """Assemble a ``predict_memory``-shaped block from per-category bytes.

    ``high_water_total`` follows the Table III worst-instant rule: the
    resident inputs plus the larger of (per-batch transients next to the
    output held so far at the last batch) and the final held output.
    """
    inputs = categories.get("a_piece", 0) + categories.get("b_piece", 0)
    held_final = held if keep_output else 0
    total = inputs + max(
        transient + (held_final * (batches - 1)) // max(batches, 1),
        held_final,
    )
    return {
        "categories": {k: int(v) for k, v in categories.items()},
        "high_water_total": int(math.ceil(total)),
        "basis": "kernel",
        "params": params,
    }


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #

_REGISTRY: dict[str, type] | None = None


def _build_registry() -> dict[str, type]:
    from .sddmm import SddmmKernel
    from .spgemm import MaskedSpgemmKernel, SpgemmKernel
    from .spmm import SpmmKernel

    return {
        cls.name: cls
        for cls in (SpgemmKernel, SpmmKernel, SddmmKernel, MaskedSpgemmKernel)
    }


def get_kernel(name_or_kernel) -> LocalKernel:
    """Resolve a kernel by registry name, class, or instance."""
    global _REGISTRY
    if isinstance(name_or_kernel, LocalKernel):
        return name_or_kernel
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    if isinstance(name_or_kernel, type) and issubclass(name_or_kernel, LocalKernel):
        return name_or_kernel()
    try:
        return _REGISTRY[name_or_kernel]()
    except (KeyError, TypeError):
        raise DistributionError(
            f"unknown local kernel {name_or_kernel!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_kernels() -> list[str]:
    """Names of all registered local kernels."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return sorted(_REGISTRY)
