"""Pluggable local-kernel family for the batched 3D SUMMA dataflow.

The execution plan (:mod:`repro.summa.exec`) is kernel-agnostic: what
happens at a stage — operand kinds, local compute, merge rule, memory
footprint — is declared by a :class:`LocalKernel` from this registry:

======================  =========  =========  =========  =========
kernel                  A          B          aux        output
======================  =========  =========  =========  =========
``spgemm`` (default)    sparse     sparse     —          sparse
``spmm``                sparse     dense      —          dense
``sddmm``               dense      dense      sparse S   sparse
``masked_spgemm``       sparse     sparse     sparse M   sparse
======================  =========  =========  =========  =========

Select one with the ``kernel=`` knob on every SUMMA driver
(:func:`repro.summa.batched_summa3d`, ``summa2d``/``summa3d``,
:meth:`repro.dist.DistContext.multiply` and the dedicated
:meth:`~repro.dist.DistContext.spmm`) or ``--kernel`` on the CLI.
"""

from .base import (
    OPERAND_KINDS,
    LocalKernel,
    TileSource,
    available_kernels,
    get_kernel,
    operand_shape,
    resolve_tile,
)
from .sddmm import SddmmKernel, sddmm_local
from .spgemm import MaskedSpgemmKernel, SpgemmKernel
from .spmm import SpmmKernel, spmm_local

__all__ = [
    "OPERAND_KINDS",
    "LocalKernel",
    "MaskedSpgemmKernel",
    "SddmmKernel",
    "SpgemmKernel",
    "SpmmKernel",
    "TileSource",
    "available_kernels",
    "get_kernel",
    "operand_shape",
    "resolve_tile",
    "sddmm_local",
    "spmm_local",
]
