"""repro — Communication-avoiding, memory-constrained SpGEMM at scale.

A from-scratch Python reproduction of *Hussain, Selvitopi, Buluç, Azad,
"Communication-Avoiding and Memory-Constrained Sparse Matrix-Matrix
Multiplication at Extreme Scale" (IPDPS 2021)*: 2D/3D sparse SUMMA, the
distributed symbolic step, BatchedSUMMA3D, sort-free local kernels, a
simulated-MPI runtime with exact communication metering, and an α–β
performance model that regenerates the paper's figures.

Quickstart::

    import repro

    A = repro.random_sparse(512, 512, nnz=8000, seed=1)
    result = repro.batched_summa3d(A, A, nprocs=16, layers=4)
    C = result.matrix

See ``examples/quickstart.py`` for a complete tour.
"""

from .errors import (
    CommError,
    DistributionError,
    FormatError,
    GridError,
    MemoryBudgetError,
    MemoryBudgetExceededError,
    PlannerError,
    ReproError,
    ShapeError,
    SpmdError,
)
from .mem import MemoryLedger, nbytes_of, resolve_budget
from .sparse import (
    SparseMatrix,
    col_concat,
    col_split,
    col_split_block_cyclic,
    diag,
    eye,
    from_dense,
    from_edges,
    get_suite,
    load_matrix,
    load_matrix_market,
    merge_hash,
    merge_heap,
    merge_partials,
    multiply,
    prune_threshold,
    prune_topk_per_column,
    random_sparse,
    save_matrix,
    save_matrix_market,
    spgemm_esc,
    spgemm_hash,
    spgemm_heap,
    spgemm_hybrid,
    spgemm_reference,
    symbolic_flops,
    symbolic_nnz,
    transpose,
    tril,
    triu,
    zeros,
)
from .kernels import LocalKernel, available_kernels, get_kernel
from .sparse.semiring import MAX_MIN, MIN_PLUS, OR_AND, PLUS_TIMES, Semiring, get_semiring

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ShapeError",
    "FormatError",
    "GridError",
    "DistributionError",
    "MemoryBudgetError",
    "MemoryBudgetExceededError",
    "CommError",
    "SpmdError",
    "PlannerError",
    # memory accounting
    "MemoryLedger",
    "nbytes_of",
    "resolve_budget",
    # sparse core
    "SparseMatrix",
    "eye",
    "diag",
    "zeros",
    "from_dense",
    "from_edges",
    "random_sparse",
    "transpose",
    "tril",
    "triu",
    "col_split",
    "col_split_block_cyclic",
    "col_concat",
    "prune_threshold",
    "prune_topk_per_column",
    "multiply",
    "get_suite",
    "spgemm_esc",
    "spgemm_hash",
    "spgemm_heap",
    "spgemm_hybrid",
    "spgemm_reference",
    "symbolic_flops",
    "symbolic_nnz",
    "merge_hash",
    "merge_heap",
    "merge_partials",
    "save_matrix",
    "load_matrix",
    "save_matrix_market",
    "load_matrix_market",
    # local kernels
    "LocalKernel",
    "get_kernel",
    "available_kernels",
    # semirings
    "Semiring",
    "get_semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_MIN",
    "OR_AND",
    # distributed API (populated below)
    "ProcGrid3D",
    "summa2d",
    "summa3d",
    "symbolic3d",
    "batched_summa3d",
    "batched_summa3d_rows",
    "run_plan",
    "ExecSpec",
    "ExecPlan",
    "__version__",
]

# distributed layer re-exports — imported last so the sparse substrate has
# no import-time dependency on the distributed modules
from .grid import ProcGrid3D  # noqa: E402
from .plan import ExecPlan, ExecSpec  # noqa: E402
from .summa import (  # noqa: E402
    batched_summa3d,
    batched_summa3d_rows,
    run_plan,
    summa2d,
    summa3d,
    symbolic3d,
)

# subpackages exposed for attribute access (repro.apps.markov_cluster, ...)
from . import apps, comm, data, kernels, mem, model, simmpi, sparse, summa, grid, utils  # noqa: E402,F401
