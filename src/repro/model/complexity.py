"""Closed-form communication and computation complexity (Tables II & III).

Each function returns the paper's expressions verbatim, parameterised by
``(p, l, b)`` and the matrix statistics.  ``bench_table2_comm_model`` and
``bench_table3_comp_model`` compare these against volumes metered on the
simulated runtime and operation counts measured in the kernels.
"""

from __future__ import annotations

import math

from ..sparse.matrix import BYTES_PER_NONZERO
from .machine import MachineSpec


def _lg(x: float) -> float:
    """log2 clamped at zero (communicators of size 1 cost nothing)."""
    return math.log2(x) if x > 1 else 0.0


def needed_fraction(nnz_piece: float, segment_count: float) -> float:
    """Expected fraction of tile segments a sparsity-aware receiver needs.

    A peer tile piece with ``nnz_piece`` nonzeros scattered over
    ``segment_count`` rows (or columns) leaves a given segment nonempty —
    hence wanted by the receiver — with probability
    ``1 - (1 - 1/m)^nnz``.  This is the occupancy model behind the
    SpComm3D-style sparse backend's bandwidth savings: near 1 for dense
    tiles, tiny for hypersparse ones.
    """
    m = max(1.0, segment_count)
    if nnz_piece <= 0:
        return 0.0
    return min(1.0, 1.0 - (1.0 - 1.0 / m) ** nnz_piece)


def comm_complexity(
    *,
    nprocs: int,
    layers: int,
    batches: int,
    nnz_a: int,
    nnz_b: int,
    flops: int,
    dk_nnz_total: int | None = None,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    backend: str = "dense",
    inner_dim: int | None = None,
    kernel: str = "spgemm",
    dense_a_bytes: int | None = None,
    dense_b_bytes: int | None = None,
    dense_c_bytes: int | None = None,
) -> dict[str, dict[str, float]]:
    """Table II: per-step total latency hops and bandwidth bytes.

    Returns ``{step: {"latency_hops": ..., "bytes": ..., "messages": ...,
    "comm_size": ...}}`` where ``latency_hops`` is the factor multiplying
    α and ``bytes`` the factor multiplying β (per process, totalled over
    all occurrences, exactly the "Total latency / Total bandwidth" rows).

    ``dk_nnz_total`` tightens the AllToAll-Fiber bound with the true
    ``sum_k nnz(D^(k))`` when known (the paper notes ``flops`` is loose).

    ``backend="sparse"`` models the SpComm3D-style point-to-point
    exchange instead (requires ``inner_dim``, the shared dimension of the
    multiplication): broadcast bandwidth shrinks by the expected needed
    fraction of each tile, latency grows from tree depth to
    ``sqrt(p/l) - 1`` individual messages per stage, and a ``Comm-Plan``
    step pays for the bit-packed occupancy masks.

    Dense-operand kernels reshape the table: pass the *global* dense
    operand sizes and the kernel name.  ``dense_a_bytes`` /
    ``dense_b_bytes`` replace the corresponding broadcast bandwidth with
    dense-panel volume (``b * bytes_A / sqrt(p*l)`` and
    ``bytes_B / sqrt(p*l)``); ``dense_c_bytes`` replaces the fiber
    exchange with dense-partial volume (``l * bytes_C / p``, each layer
    holding a full accumulator of its block).  A dense operand rides
    collectives even under ``backend="sparse"``, so its step keeps the
    tree-shaped latency, the *counterpart's* needed fraction becomes 1
    (dense panels occupy every segment), and kernels without a symbolic
    pass (``"spmm"``, ``"sddmm"``) zero the Symbolic row.
    """
    p, l, b = nprocs, layers, batches
    r = bytes_per_nonzero
    sqrt_pl = math.sqrt(p / l)
    stages = round(sqrt_pl)
    intermediate = flops if dk_nnz_total is None else dk_nnz_total
    a_dense = dense_a_bytes is not None
    b_dense = dense_b_bytes is not None

    out = {
        "A-Broadcast": {
            "latency_hops": b * sqrt_pl * _lg(p / l),
            "bytes": r * b * nnz_a / math.sqrt(p * l),
            "messages": b * stages,
            "comm_size": sqrt_pl,
        },
        "B-Broadcast": {
            "latency_hops": b * sqrt_pl * _lg(p / l),
            "bytes": r * nnz_b / math.sqrt(p * l),
            "messages": b * stages,
            "comm_size": sqrt_pl,
        },
        "AllToAll-Fiber": {
            "latency_hops": b * l if l > 1 else 0.0,
            "bytes": r * intermediate / p if l > 1 else 0.0,
            "messages": b if l > 1 else 0,
            "comm_size": l,
        },
        "Symbolic": {
            # same broadcasts as one unbatched SUMMA pass (b-independent)
            "latency_hops": 2 * sqrt_pl * _lg(p / l),
            "bytes": r * (nnz_a + nnz_b) / math.sqrt(p * l),
            "messages": 2 * stages,
            "comm_size": sqrt_pl,
        },
    }
    if a_dense:
        out["A-Broadcast"]["bytes"] = b * dense_a_bytes / math.sqrt(p * l)
    if b_dense:
        out["B-Broadcast"]["bytes"] = dense_b_bytes / math.sqrt(p * l)
    if dense_c_bytes is not None:
        # each layer holds a full dense accumulator of its output block,
        # so the fiber exchange ships dense partials, not sparse entries
        out["AllToAll-Fiber"]["bytes"] = (
            l * dense_c_bytes / p if l > 1 else 0.0
        )
    if kernel in ("spmm", "sddmm"):
        # no symbolic pass: batch counts come from the kernel's
        # geometry-exact footprint model, not Alg. 3
        out["Symbolic"] = {
            "latency_hops": 0.0, "bytes": 0.0, "messages": 0,
            "comm_size": sqrt_pl,
        }
    if backend == "dense":
        return out
    if backend != "sparse":
        raise ValueError(f"unknown communication backend {backend!r}")
    if a_dense and b_dense:
        # both operands dense (SDDMM): every movement is a collective and
        # the symbolic prologue is skipped — the sparse backend degenerates
        # to the dense table with no Comm-Plan row.
        return out
    if inner_dim is None:
        raise ValueError("backend='sparse' needs inner_dim (= a.ncols)")

    # occupancy: tiles of the shared dimension hold inner_dim/(sqrt(p/l)*l)
    # segments; a B batch piece carries nnz_b/(p*b) nonzeros, an A tile
    # nnz_a/p.  The needed fractions scale the dense bandwidth terms; a
    # dense counterpart occupies every segment, so the fraction is 1.
    m = inner_dim / max(stages * l, 1)
    f_a = 1.0 if b_dense else needed_fraction(nnz_b / (p * b), m)
    f_b = 1.0 if a_dense else needed_fraction(nnz_a / p, m)
    p2p_hops = b * stages * max(stages - 1, 0)
    if not a_dense:
        # dense A panels would ride collectives; only sparse A is thinned
        out["A-Broadcast"].update(
            latency_hops=p2p_hops,
            bytes=out["A-Broadcast"]["bytes"] * f_a,
            messages=b * stages * max(stages - 1, 0),
            comm_size=2,
        )
    if not b_dense:
        out["B-Broadcast"].update(
            latency_hops=p2p_hops,
            bytes=out["B-Broadcast"]["bytes"] * f_b,
            messages=b * stages * max(stages - 1, 0),
            comm_size=2,
        )
    # per batch: one mask allgather + one request alltoall on each of the
    # row and column communicators, bit-packed (1 bit per segment); the
    # A-side half is static and paid once (the "+1").
    mask_bytes = math.ceil(m / 8)
    out["Comm-Plan"] = {
        "latency_hops": 2 * (b + 1) * (_lg(stages) + max(stages - 1, 0)),
        "bytes": 2.0 * (b + 1) * stages * mask_bytes,
        "messages": 4 * (b + 1),
        "comm_size": stages,
    }
    return out


def comp_complexity(
    *,
    nprocs: int,
    layers: int,
    batches: int,
    flops: int,
    merge_kernel: str = "heap",
) -> dict[str, float]:
    """Table III: total per-process operation counts of the local kernels.

    ``Local-Multiply`` totals ``flops / p`` regardless of ``b`` and ``l``.
    The merge rows depend on the merge kernel:

    * ``"heap"`` — the paper's Table III as printed, which models the
      *prior-work* heap merge: k-way merging pays the logarithmic factors
      ``lg(p/l)`` (layer) and ``lg(l)`` (fiber) per entry;
    * ``"hash"`` — this paper's sort-free hash merge: O(1) per entry, so
      each merge step costs one pass over its input entries (no log
      factor).  This is what the paper's measured Table VII numbers
      correspond to after the kernel replacement.
    """
    p, l = nprocs, layers
    if merge_kernel == "heap":
        layer_factor, fiber_factor = _lg(p / l), _lg(l)
    elif merge_kernel == "hash":
        layer_factor = 1.0 if p / l > 1 else 0.0
        fiber_factor = 1.0 if l > 1 else 0.0
    else:
        raise ValueError(f"unknown merge kernel {merge_kernel!r}")
    return {
        "Local-Multiply": flops / p,
        "Merge-Layer": flops / p * layer_factor,
        "Merge-Fiber": flops / p * fiber_factor,
    }


def step_times_closed_form(
    machine: MachineSpec,
    *,
    nprocs: int,
    layers: int,
    batches: int,
    nnz_a: int,
    nnz_b: int,
    flops: int,
    dk_nnz_total: int | None = None,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    merge_kernel: str = "hash",
    comm_backend: str = "dense",
    inner_dim: int | None = None,
) -> dict[str, float]:
    """Seconds per step under the α–β model (Tables II + III combined).

    ``merge_kernel`` defaults to ``"hash"`` — the paper's implementation —
    while ``"heap"`` models the prior-work kernels (the Fig. 15 ablation).
    ``comm_backend="sparse"`` prices the SpComm3D-style point-to-point
    exchange instead (adds a ``Comm-Plan`` entry; needs ``inner_dim``).
    """
    comm = comm_complexity(
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        nnz_a=nnz_a,
        nnz_b=nnz_b,
        flops=flops,
        dk_nnz_total=dk_nnz_total,
        bytes_per_nonzero=bytes_per_nonzero,
        backend=comm_backend,
        inner_dim=inner_dim,
    )
    comp = comp_complexity(
        nprocs=nprocs, layers=layers, batches=batches, flops=flops,
        merge_kernel=merge_kernel,
    )
    times: dict[str, float] = {}
    for step in ("A-Broadcast", "B-Broadcast"):
        c = comm[step]
        times[step] = machine.alpha * c["latency_hops"] + machine.beta * c["bytes"]
    c = comm["AllToAll-Fiber"]
    times["AllToAll-Fiber"] = (
        machine.alpha * c["latency_hops"] + machine.beta_alltoall * c["bytes"]
    )
    times["Symbolic"] = (
        machine.alpha * comm["Symbolic"]["latency_hops"]
        + machine.beta * comm["Symbolic"]["bytes"]
        + flops / nprocs / machine.symbolic_rate
    )
    if "Comm-Plan" in comm:
        c = comm["Comm-Plan"]
        times["Comm-Plan"] = (
            machine.alpha * c["latency_hops"] + machine.beta * c["bytes"]
        )
    for step, ops in comp.items():
        times[step] = ops / machine.sparse_rate
    return times


def total_comm_time(
    machine: MachineSpec,
    *,
    nprocs: int,
    layers: int,
    batches: int,
    nnz_a: int,
    nnz_b: int,
    flops: int,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    backend: str = "dense",
    inner_dim: int | None = None,
) -> float:
    """Summed α–β time of the communication steps (planner objective).

    With ``backend="sparse"`` the ``Comm-Plan`` handshake is included, so
    comparing backends at equal ``(p, l, b)`` is an apples-to-apples
    total.
    """
    comm = comm_complexity(
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        nnz_a=nnz_a,
        nnz_b=nnz_b,
        flops=flops,
        bytes_per_nonzero=bytes_per_nonzero,
        backend=backend,
        inner_dim=inner_dim,
    )
    steps = ["A-Broadcast", "B-Broadcast", "AllToAll-Fiber"]
    if "Comm-Plan" in comm:
        steps.append("Comm-Plan")
    return sum(
        machine.alpha * comm[s]["latency_hops"] + machine.beta * comm[s]["bytes"]
        for s in steps
    )
