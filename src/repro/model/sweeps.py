"""Reusable experiment sweeps — the paper's figures as library functions.

The benchmark harness prints and asserts; these functions *produce* the
underlying series so downstream users (scripts, notebooks, the CLI) can
regenerate any figure's data without going through pytest.  Each returns
plain lists of dicts, ready for tabulation or plotting.
"""

from __future__ import annotations

from ..sparse.matrix import BYTES_PER_NONZERO
from .machine import CORI_KNL, MachineSpec
from .predictor import estimate_batches, predict_steps, strong_scaling_series

STEP_ORDER = (
    "Symbolic",
    "A-Broadcast",
    "B-Broadcast",
    "Local-Multiply",
    "Merge-Layer",
    "AllToAll-Fiber",
    "Merge-Fiber",
)


def layer_batch_sweep(
    *,
    machine: MachineSpec = CORI_KNL,
    nprocs: int,
    layer_values=(1, 4, 16),
    batch_values=(1, 16, 64),
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
) -> list[dict]:
    """The Fig. 4 sweep: per-step modelled seconds over an (l, b) grid."""
    rows = []
    for layers in layer_values:
        for batches in batch_values:
            times = predict_steps(
                machine, nprocs=nprocs, layers=layers, batches=batches,
                nnz_a=nnz_a, nnz_b=nnz_b, nnz_c=nnz_c, flops=flops,
            )
            rows.append({
                "layers": layers,
                "batches": batches,
                "total": times.total(),
                **{s: times.get(s) for s in STEP_ORDER},
            })
    return rows


def strong_scaling_sweep(
    *,
    machine: MachineSpec = CORI_KNL,
    core_counts,
    layers: int = 16,
    memory_fraction: float = 0.35,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
) -> list[dict]:
    """The Fig. 6/7 series: per-scale batch counts and step breakdowns."""
    points = strong_scaling_series(
        machine,
        core_counts=core_counts,
        layers=layers,
        memory_fraction=memory_fraction,
        nnz_a=nnz_a,
        nnz_b=nnz_b,
        nnz_c=nnz_c,
        flops=flops,
    )
    return [
        {
            "cores": pt.cores,
            "nprocs": pt.nprocs,
            "batches": pt.batches,
            "total": pt.total,
            **{s: pt.times.get(s) for s in STEP_ORDER},
        }
        for pt in points
    ]


def batch_requirement_sweep(
    *,
    machine: MachineSpec = CORI_KNL,
    nprocs: int,
    layers: int,
    memory_budgets,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
) -> list[dict]:
    """Batch counts across a memory-budget sweep (the Eq. 2 curve)."""
    rows = []
    for budget in memory_budgets:
        try:
            batches = estimate_batches(
                memory_budget=budget,
                nprocs=nprocs,
                layers=layers,
                nnz_a=nnz_a,
                nnz_b=nnz_b,
                nnz_c=nnz_c,
                flops=flops,
                bytes_per_nonzero=bytes_per_nonzero,
            )
            rows.append({"memory_budget": budget, "batches": batches,
                         "feasible": True})
        except ValueError:
            rows.append({"memory_budget": budget, "batches": None,
                         "feasible": False})
    return rows


def machine_comparison(
    machines,
    *,
    nprocs: int,
    layers: int,
    batches: int,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
) -> list[dict]:
    """The Fig. 12/13 axis: the same run projected on several machines."""
    rows = []
    for machine in machines:
        times = predict_steps(
            machine, nprocs=nprocs, layers=layers, batches=batches,
            nnz_a=nnz_a, nnz_b=nnz_b, nnz_c=nnz_c, flops=flops,
        )
        comm = sum(
            times.get(s)
            for s in ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")
        )
        comp = sum(
            times.get(s)
            for s in ("Local-Multiply", "Merge-Layer", "Merge-Fiber")
        )
        rows.append({
            "machine": machine.name,
            "comm": comm,
            "comp": comp,
            "total": times.total(),
        })
    return rows
