"""Machine specifications for the α–β model.

A :class:`MachineSpec` captures what the model needs about a platform:
message latency ``alpha``, inverse bandwidth ``beta`` (seconds per byte),
an effective *sparse-kernel rate* (partial products processed per second
per process — SpGEMM is bandwidth-bound, so this is far below peak flops),
and node geometry for core↔process conversions.

The Cori presets follow Table IV of the paper with interconnect constants
typical of Cray Aries and kernel rates back-solved from the paper's own
measurements (e.g. Local-Multiply of Isolates-small on 65,536 cores takes
~130 s for 42 Tflops over 4096 processes → ~8e7 products/s/process).
Absolute seconds are therefore indicative; the *shape* conclusions the
benches draw are insensitive to the exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of one machine configuration.

    Attributes
    ----------
    name:
        Preset identifier.
    alpha:
        Per-message latency in seconds.
    beta:
        Inverse bandwidth in seconds per byte (per process).
    sparse_rate:
        Partial products per second one process sustains in
        Local-Multiply / merge kernels.
    symbolic_rate:
        Products per second in the (lighter) symbolic pass.
    cores_per_node, threads_per_core, mem_per_node:
        Node geometry (Table IV).
    threads_per_process:
        The paper's MPI+OpenMP mapping (16 on KNL, 6 on Haswell).
    """

    name: str
    alpha: float
    beta: float
    sparse_rate: float
    symbolic_rate: float
    cores_per_node: int
    threads_per_core: int
    mem_per_node: int
    threads_per_process: int
    #: inverse bandwidth for the point-to-point AllToAll-Fiber exchange.
    #: Each byte moves exactly once (no tree forwarding), so the effective
    #: rate is several times the tree-broadcast rate ``beta`` models.
    beta_alltoall: float = 0.0

    def __post_init__(self) -> None:
        if self.beta_alltoall == 0.0:
            object.__setattr__(self, "beta_alltoall", self.beta / 4.0)

    def procs_for_cores(self, cores: int, *, hyperthreads: bool = False) -> int:
        """MPI process count for a core count under the paper's mapping."""
        threads = cores * (self.threads_per_core if hyperthreads else 1)
        return max(1, threads // self.threads_per_process)

    def nodes_for_cores(self, cores: int) -> int:
        return max(1, cores // self.cores_per_node)

    def aggregate_memory(self, cores: int) -> int:
        """Total memory in bytes across the nodes hosting ``cores`` cores."""
        return self.nodes_for_cores(cores) * self.mem_per_node

    def with_rate_scale(self, factor: float, name: str | None = None) -> "MachineSpec":
        """Scaled-compute variant (used by the hyperthreading study)."""
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            sparse_rate=self.sparse_rate * factor,
            symbolic_rate=self.symbolic_rate * factor,
        )


GB = 1024**3

#: Cori KNL partition (Intel Xeon Phi 7250): 68 cores/node, 112 GB/node.
#: beta is the *effective* per-process rate for collectives over sparse
#: payloads — packing/unpacking and tree forwarding put it far below the
#: Aries link rate (the paper's runs spend up to ~50% of time in
#: communication at scale, which pins beta near 0.5 GB/s effective).
CORI_KNL = MachineSpec(
    name="cori-knl",
    alpha=4.0e-6,
    beta=2.0e-9,            # ~0.5 GB/s effective per process
    sparse_rate=8.0e7,      # products/s/process with 16 KNL threads
    symbolic_rate=3.2e8,    # symbolic pass is ~4x lighter (no values)
    cores_per_node=68,
    threads_per_core=4,
    mem_per_node=112 * GB,
    threads_per_process=16,
)

#: Cori Haswell partition (Xeon E5-2698): same Aries network, faster cores.
#: Paper Fig. 13: computation ~2.1x faster, communication ~1.4x faster.
CORI_HASWELL = MachineSpec(
    name="cori-haswell",
    alpha=4.0e-6 / 1.4,
    beta=2.0e-9 / 1.4,
    sparse_rate=8.0e7 * 2.1,
    symbolic_rate=3.2e8 * 2.1,
    cores_per_node=32,
    threads_per_core=2,
    mem_per_node=128 * GB,
    threads_per_process=6,
)

#: KNL with all 4 hardware threads per core (Fig. 12): 4x the processes,
#: each individually slower, netting ~1.6x aggregate computation — but the
#: 4x processes per node contend for the same Aries NIC, so per-process
#: bandwidth drops ~4x and message injection slows, which is why the paper
#: sees communication time *increase* under hyperthreading.
CORI_KNL_HT = MachineSpec(
    name="cori-knl-ht",
    alpha=4.0e-6 * 1.5,
    beta=2.0e-9 * 4.0,
    sparse_rate=8.0e7 * 0.40,   # per-process rate drops; aggregate gains 1.6x
    symbolic_rate=3.2e8 * 0.40,
    cores_per_node=68,
    threads_per_core=4,
    mem_per_node=112 * GB,
    threads_per_process=16,
)
