"""α–β performance model (paper Tables II & III).

The paper's scaling analysis is itself an α–β model; this package encodes
it so the evaluation figures can be regenerated at paper scale (16K-262K
cores) from either closed-form matrix statistics or volumes measured
exactly on the simulated-MPI runtime.

* :mod:`machine` — machine presets (Cori-KNL, Cori-Haswell, hyperthreaded
  variants) with latency, bandwidth and sparse-kernel rates;
* :mod:`complexity` — the closed forms of Tables II and III;
* :mod:`predictor` — per-step and total time projection, strong-scaling
  series, and batch-count estimation at paper scale;
* :mod:`memory` — the Table III / Sec. III-B per-process memory estimate
  (the counterpart the α–β time model lacked) and its calibration fit
  against measured :class:`~repro.mem.MemoryLedger` marks.
"""

from .machine import (
    CORI_HASWELL,
    CORI_KNL,
    CORI_KNL_HT,
    MachineSpec,
)
from .complexity import (
    comm_complexity,
    comp_complexity,
    total_comm_time,
)
from .predictor import (
    ScalePoint,
    estimate_batches,
    estimate_dk_nnz,
    overlapped_makespan,
    parallel_efficiency,
    predict_makespan,
    predict_steps,
    strong_scaling_series,
)
from .memory import (
    MemoryFit,
    batches_for_budget,
    estimate_max_tile_stats,
    fit_memory_model,
    predict_kernel_memory,
    predict_memory,
)

__all__ = [
    "MachineSpec",
    "CORI_KNL",
    "CORI_HASWELL",
    "CORI_KNL_HT",
    "comm_complexity",
    "comp_complexity",
    "total_comm_time",
    "predict_steps",
    "predict_makespan",
    "overlapped_makespan",
    "estimate_batches",
    "estimate_dk_nnz",
    "parallel_efficiency",
    "strong_scaling_series",
    "ScalePoint",
    "predict_kernel_memory",
    "predict_memory",
    "batches_for_budget",
    "estimate_max_tile_stats",
    "fit_memory_model",
    "MemoryFit",
]
