"""Projection of BatchedSUMMA3D times at paper scale.

Combines the closed forms of :mod:`repro.model.complexity` with a
layer-compression model for the intermediate ``sum_k nnz(D^(k))`` and the
symbolic batch rule (Alg. 3 line 12) to produce the per-step breakdowns
the paper's strong-scaling figures plot.

The intermediate model: ``C`` has ``nnz(C)`` coordinates, each hit by
``cf = flops / nnz(C)`` partial products on average.  With ``l`` layers
the products of one coordinate scatter uniformly over layers, so the
coordinate materialises in a layer with probability ``1 - (1 - 1/l)^cf``:

    dk_total(l) = nnz(C) * l * (1 - (1 - 1/l)^cf)

which is ``nnz(C)`` at ``l = 1`` and approaches ``flops`` as ``l`` grows —
exactly the "grows slowly with l" behaviour the paper notes under
Table II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sparse.matrix import BYTES_PER_NONZERO
from ..utils.timing import StepTimes
from .complexity import step_times_closed_form
from .machine import MachineSpec


def estimate_dk_nnz(nnz_c: int, flops: int, layers: int) -> int:
    """Expected ``sum_k nnz(D^(k))`` under the uniform-scatter model."""
    if nnz_c <= 0:
        return 0
    cf = max(1.0, flops / nnz_c)
    if layers <= 1:
        return int(nnz_c)
    hit = 1.0 - (1.0 - 1.0 / layers) ** cf
    return int(min(flops, round(nnz_c * layers * hit)))


def estimate_batches(
    *,
    memory_budget: int,
    nprocs: int,
    layers: int,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
    imbalance: float = 1.0,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
) -> int:
    """Analytic stand-in for the symbolic step at paper scale.

    ``imbalance`` is the max/mean load factor Alg. 3 budgets for (1.0 =
    perfectly balanced).  Raises ``ValueError`` when the inputs alone
    overflow the per-process budget.
    """
    r = bytes_per_nonzero
    per_proc = memory_budget / nprocs
    max_nnz_c = imbalance * estimate_dk_nnz(nnz_c, flops, layers) / nprocs
    max_inputs = imbalance * (nnz_a + nnz_b) / nprocs
    denom = per_proc - r * max_inputs
    if denom <= 0:
        raise ValueError(
            f"inputs alone exceed the per-process budget "
            f"({r * max_inputs:.3g} B vs {per_proc:.3g} B)"
        )
    return max(1, math.ceil(r * max_nnz_c / denom))


def predict_steps(
    machine: MachineSpec,
    *,
    nprocs: int,
    layers: int,
    batches: int,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
    include_symbolic: bool = True,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    merge_kernel: str = "hash",
    comm_backend: str = "dense",
    inner_dim: int | None = None,
) -> StepTimes:
    """Per-step modelled seconds for one BatchedSUMMA3D execution.

    ``merge_kernel="hash"`` models this paper's sort-free merge (linear in
    merged entries); ``"heap"`` models the prior-work kernels with
    Table III's logarithmic k-way factors — swapping it is the modelled
    form of the Fig. 15 comparison.  ``comm_backend="sparse"`` prices the
    sparsity-aware point-to-point backend of :mod:`repro.comm` (requires
    ``inner_dim``); the breakdown then includes a ``Comm-Plan`` step.
    """
    dk = estimate_dk_nnz(nnz_c, flops, layers)
    times = step_times_closed_form(
        machine,
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        nnz_a=nnz_a,
        nnz_b=nnz_b,
        flops=flops,
        dk_nnz_total=dk,
        bytes_per_nonzero=bytes_per_nonzero,
        merge_kernel=merge_kernel,
        comm_backend=comm_backend,
        inner_dim=inner_dim,
    )
    if not include_symbolic:
        times.pop("Symbolic", None)
    # Merge costs follow the *intermediate* sizes, not raw flops.
    # Merge-Layer consumes the stage outputs, which are unmerged across
    # sqrt(p/l) stages (each stage only merged internally) — the relevant
    # granularity is l * stages pieces of the expansion.  Merge-Fiber
    # consumes the layer outputs: l pieces.
    if flops:
        stages = max(1, round(math.sqrt(nprocs / layers)))
        dk_stage = estimate_dk_nnz(nnz_c, flops, layers * stages)
        times["Merge-Layer"] *= dk_stage / flops
        times["Merge-Fiber"] *= dk / flops
    return StepTimes(dict(times))


def overlapped_makespan(
    times: StepTimes,
    *,
    stages: int,
    overlap: str = "depth1",
) -> float:
    """Modelled makespan when per-stage broadcasts overlap the multiply.

    The sequential cost model sums every step; a depth-1 pipelined
    executor instead hides each stage's A/B broadcast behind the previous
    stage's Local-Multiply.  With per-stage communication ``c`` and
    computation ``m`` (the step totals split evenly over ``stages``), the
    classic software-pipelining makespan is

        ``c + (stages - 1) * max(c, m) + m``

    — a fill stage, ``stages - 1`` overlapped steady-state stages, and a
    drain multiply.  All non-overlappable steps (Symbolic, Comm-Plan,
    merges, fiber exchange, postprocess) are charged at full cost.  With
    ``overlap="off"`` (or a single stage) this reduces exactly to
    ``times.total()``, so planners can score both modes uniformly.
    """
    if overlap not in ("off", "depth1"):
        raise ValueError(
            f"unknown overlap mode {overlap!r}; expected 'off' or 'depth1'"
        )
    total = times.total()
    if overlap == "off" or stages <= 1:
        return total
    comm = times.get("A-Broadcast") + times.get("B-Broadcast")
    comp = times.get("Local-Multiply")
    c = comm / stages
    m = comp / stages
    pipelined = c + (stages - 1) * max(c, m) + m
    return total - comm - comp + pipelined


def predict_makespan(
    machine: MachineSpec,
    *,
    nprocs: int,
    layers: int,
    overlap: str = "off",
    **kwargs,
) -> float:
    """Total modelled seconds for one execution under an ``overlap`` mode.

    Convenience over :func:`predict_steps` + :func:`overlapped_makespan`
    with the grid's stage count ``sqrt(p / l)`` filled in; the quantity
    ``auto_config`` / ``choose_backend`` minimise.
    """
    times = predict_steps(machine, nprocs=nprocs, layers=layers, **kwargs)
    stages = max(1, round(math.sqrt(nprocs / max(layers, 1))))
    return overlapped_makespan(times, stages=stages, overlap=overlap)


@dataclass
class ScalePoint:
    """One concurrency point of a strong-scaling series."""

    cores: int
    nprocs: int
    batches: int
    times: StepTimes

    @property
    def total(self) -> float:
        return self.times.total()


def strong_scaling_series(
    machine: MachineSpec,
    *,
    core_counts,
    layers: int,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
    memory_fraction: float = 1.0,
    imbalance: float = 1.3,
    hyperthreads: bool = False,
) -> list[ScalePoint]:
    """Model a strong-scaling experiment (Figs. 6, 7, 9).

    For each core count: derive the process count under the paper's
    thread mapping, size the aggregate memory, run the analytic symbolic
    rule to get ``b``, and produce the per-step breakdown.
    ``memory_fraction`` lets benches tighten memory to force batching.
    """
    points: list[ScalePoint] = []
    for cores in core_counts:
        nprocs = machine.procs_for_cores(cores, hyperthreads=hyperthreads)
        budget = int(machine.aggregate_memory(cores) * memory_fraction)
        b = estimate_batches(
            memory_budget=budget,
            nprocs=nprocs,
            layers=layers,
            nnz_a=nnz_a,
            nnz_b=nnz_b,
            nnz_c=nnz_c,
            flops=flops,
            imbalance=imbalance,
        )
        times = predict_steps(
            machine,
            nprocs=nprocs,
            layers=layers,
            batches=b,
            nnz_a=nnz_a,
            nnz_b=nnz_b,
            nnz_c=nnz_c,
            flops=flops,
        )
        points.append(ScalePoint(cores=cores, nprocs=nprocs, batches=b, times=times))
    return points


def parallel_efficiency(points: list[ScalePoint]) -> list[float]:
    """Efficiency relative to the first point: (P1/P2) * (T(P1)/T(P2))."""
    if not points:
        return []
    base = points[0]
    return [
        (base.nprocs / pt.nprocs) * (base.total / pt.total) if pt.total else 0.0
        for pt in points
    ]
