"""Fitting α–β machine constants from measured step breakdowns.

The Cori presets in :mod:`repro.model.machine` were back-solved by hand
from a few of the paper's numbers; this module does it systematically:
given per-step times measured at several ``(p, l, b)`` configurations
(from a real machine, or from the simulator's wall clocks), recover the
``alpha`` / ``beta`` / ``sparse_rate`` that best explain them in the
least-squares sense.  The fitted spec then drives
:func:`repro.model.predict_steps` for extrapolation — the workflow a user
with their own cluster would follow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.matrix import BYTES_PER_NONZERO
from .complexity import comm_complexity, comp_complexity
from .machine import MachineSpec


@dataclass(frozen=True)
class Observation:
    """One measured BatchedSUMMA3D execution.

    ``step_seconds`` maps step names (the paper's labels) to measured
    seconds; missing steps are simply not used in the fit.
    """

    nprocs: int
    layers: int
    batches: int
    nnz_a: int
    nnz_b: int
    flops: int
    step_seconds: dict[str, float]


COMM_FIT_STEPS = ("A-Broadcast", "B-Broadcast", "AllToAll-Fiber")
COMP_FIT_STEPS = ("Local-Multiply", "Merge-Layer", "Merge-Fiber")


def fit_machine(
    observations,
    *,
    base: MachineSpec | None = None,
    name: str = "calibrated",
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    merge_kernel: str = "hash",
) -> MachineSpec:
    """Least-squares fit of (alpha, beta, sparse_rate) to observations.

    Communication rows solve ``t = alpha * hops + beta * bytes`` (the
    alltoall uses ``beta / 4``, matching the preset convention);
    computation rows solve ``t = ops / rate``.  Non-fitted fields
    (symbolic rate, node geometry) are copied from ``base`` (default:
    Cori-KNL).  Raises ``ValueError`` when the observations do not
    constrain the fit (fewer than two independent communication rows or no
    computation rows).
    """
    from .machine import CORI_KNL

    base = base if base is not None else CORI_KNL
    observations = list(observations)

    rows = []
    targets = []
    comp_ops = []
    comp_times = []
    for obs in observations:
        comm = comm_complexity(
            nprocs=obs.nprocs,
            layers=obs.layers,
            batches=obs.batches,
            nnz_a=obs.nnz_a,
            nnz_b=obs.nnz_b,
            flops=obs.flops,
            bytes_per_nonzero=bytes_per_nonzero,
        )
        for step in COMM_FIT_STEPS:
            if step not in obs.step_seconds:
                continue
            hops = comm[step]["latency_hops"]
            nbytes = comm[step]["bytes"]
            if step == "AllToAll-Fiber":
                nbytes /= 4.0  # preset convention: beta_alltoall = beta / 4
            rows.append([hops, nbytes])
            targets.append(obs.step_seconds[step])
        comp = comp_complexity(
            nprocs=obs.nprocs,
            layers=obs.layers,
            batches=obs.batches,
            flops=obs.flops,
            merge_kernel=merge_kernel,
        )
        for step in COMP_FIT_STEPS:
            if step not in obs.step_seconds:
                continue
            if comp[step] > 0 and obs.step_seconds[step] > 0:
                comp_ops.append(comp[step])
                comp_times.append(obs.step_seconds[step])

    matrix = np.array(rows, dtype=float)
    target = np.array(targets, dtype=float)
    if matrix.shape[0] < 2 or np.linalg.matrix_rank(matrix) < 2:
        raise ValueError(
            "observations do not constrain (alpha, beta): need at least two "
            "independent communication measurements"
        )
    if not comp_ops:
        raise ValueError("observations contain no computation measurements")

    # non-negative least squares via clipped lstsq (alpha, beta >= 0)
    solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    alpha, beta = (float(max(v, 0.0)) for v in solution)
    # rate: ops-weighted harmonic fit of t = ops / rate
    rate = float(np.sum(comp_ops) / np.sum(comp_times))

    return MachineSpec(
        name=name,
        alpha=alpha,
        beta=beta,
        sparse_rate=rate,
        symbolic_rate=base.symbolic_rate * (rate / base.sparse_rate),
        cores_per_node=base.cores_per_node,
        threads_per_core=base.threads_per_core,
        mem_per_node=base.mem_per_node,
        threads_per_process=base.threads_per_process,
        beta_alltoall=beta / 4.0,
    )


def relative_error(machine: MachineSpec, observations) -> float:
    """Mean relative error of the machine's predictions on observations —
    the goodness-of-fit metric for :func:`fit_machine`."""
    from .predictor import predict_steps

    errors = []
    for obs in observations:
        predicted = predict_steps(
            machine,
            nprocs=obs.nprocs,
            layers=obs.layers,
            batches=obs.batches,
            nnz_a=obs.nnz_a,
            nnz_b=obs.nnz_b,
            nnz_c=max(obs.flops, 1),  # unused by comm rows; bounds merges
            flops=obs.flops,
            include_symbolic=False,
        )
        for step, measured in obs.step_seconds.items():
            if measured <= 0:
                continue
            errors.append(abs(predicted.get(step) - measured) / measured)
    return float(np.mean(errors)) if errors else 0.0
