"""Per-process memory model (paper Table III / Sec. III-B).

The paper sizes BatchedSUMMA3D's footprint from three symbolic statistics
— ``maxnnz(A_ik)``, ``maxnnz(B_kj)`` and ``maxnnz(Ĉ_ij)`` (the largest
per-process *unmerged* intermediate) — at ``r`` bytes per nonzero:
resident input tiles, broadcast pieces in flight, and a ``1/b`` share of
the partial-result fibers per batch.  Alg. 3 line 12 inverts the same
terms to choose ``b``; :func:`batches_for_budget` is that rule, and
:func:`predict_memory` is the forward direction — the predicted
high-water mark a run's :class:`~repro.mem.MemoryLedger` should measure.

The closed loop: drivers attach :func:`predict_memory`'s output to
``info["memory"]["model"]`` alongside the measured marks, with the
predicted/measured ratio in ``info["memory"]["model_error"]``; the
:func:`fit_memory_model` least-squares fit (style of
:func:`repro.model.calibrate.fit_machine`) turns a set of such runs into
per-category correction factors, which feed back in via ``scale=``.

The category names match :data:`repro.mem.CATEGORIES`, so predicted and
measured blocks line up key for key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import MemoryBudgetError
from ..sparse.matrix import BYTES_PER_NONZERO
from .predictor import estimate_dk_nnz

__all__ = [
    "MemoryFit",
    "batches_for_budget",
    "estimate_max_tile_stats",
    "fit_memory_model",
    "predict_kernel_memory",
    "predict_memory",
]


def batches_for_budget(
    *,
    memory_budget: int,
    nprocs: int,
    max_nnz_a: int,
    max_nnz_b: int,
    max_nnz_c: int,
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    max_batches: int | None = None,
) -> int:
    """Alg. 3 line 12: the batch count that fits the aggregate budget.

    ``memory_budget`` is the aggregate ``M`` over all processes (the
    symbolic step's convention); the rule works with the per-process
    share ``M / p``.  Raises :class:`~repro.errors.MemoryBudgetError`
    when the inputs alone exceed it — no batch count helps then.
    ``max_batches`` caps the answer (a batch needs at least one output
    column, so drivers pass ``b.ncols``).
    """
    r = bytes_per_nonzero
    per_proc = memory_budget / nprocs
    denom = per_proc - r * (max_nnz_a + max_nnz_b)
    if denom <= 0:
        raise MemoryBudgetError(
            f"inputs alone exceed the per-process budget: M/p = {per_proc:.0f} B "
            f"<= r*(maxnnzA + maxnnzB) = {r * (max_nnz_a + max_nnz_b)} B"
        )
    batches = max(1, math.ceil(r * max_nnz_c / denom))
    if max_batches is not None:
        batches = min(batches, max(1, int(max_batches)))
    return batches


def estimate_max_tile_stats(
    *,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    flops: int,
    nprocs: int,
    layers: int,
    imbalance: float = 1.3,
) -> dict:
    """Analytic stand-in for the symbolic maxima at paper scale.

    When no symbolic step has run (the planner's ``use_symbolic=False``
    path), derive the three Table III statistics from global counts: each
    per-process maximum is the balanced share times the ``imbalance``
    factor, and the intermediate uses the layer-compression model
    :func:`~repro.model.predictor.estimate_dk_nnz`.
    """
    dk = estimate_dk_nnz(nnz_c, flops, layers)
    return {
        "max_nnz_a": math.ceil(imbalance * nnz_a / nprocs),
        "max_nnz_b": math.ceil(imbalance * nnz_b / nprocs),
        "max_nnz_c": math.ceil(imbalance * dk / nprocs),
    }


def predict_memory(
    *,
    nprocs: int,
    layers: int,
    batches: int,
    max_nnz_a: int,
    max_nnz_b: int,
    max_nnz_c: int,
    nnz_c: int | None = None,
    keep_output: bool = False,
    overlap: str = "off",
    bytes_per_nonzero: int = BYTES_PER_NONZERO,
    imbalance: float = 1.3,
    scale: float = 1.0,
    basis: str = "symbolic",
) -> dict:
    """Table III per-process memory estimate, per ledger category.

    Terms (``r`` = ``bytes_per_nonzero``, ``b`` = ``batches``):

    * ``a_piece`` / ``b_piece`` — resident input tiles, ``r * maxnnz(A_ik)``
      and ``r * maxnnz(B_kj)``;
    * ``recv_buffer`` — broadcast pieces in flight, ``r * maxnnz(A_ik) +
      r * maxnnz(B_kj) / b`` (a stage receives a whole peer A tile but
      only a ``1/b`` column slice of B).  Depth-1 overlap double-buffers
      the operands, doubling this term.  With ``layers > 1`` the
      AllToAll-Fiber pieces (one ``1/b`` share of the intermediate) are
      in flight too;
    * ``merge_scratch`` — the per-batch share of the unmerged
      partial-result fibers, ``r * maxnnz(Ĉ_ij) / b`` — the term Alg. 3
      divides by ``b`` to fit the budget;
    * ``output_batch`` — with ``keep_output`` the accumulated merged C
      tile (bounded by ``r * maxnnz(Ĉ_ij)``, or the balanced share of
      ``nnz_c`` when the merged total is known); otherwise one batch's
      transient output tile;
    * ``checkpoint`` — 0 (driver-side, not a rank cost).

    ``high_water_total`` is *not* the category sum: held output grows
    across batches while scratch peaks every batch, so the model takes
    the worst instant of the batch timeline — inputs + the larger of
    (recv + scratch + held-so-far) at the last batch and the final held
    output.  Returns a dict shaped like the measured
    ``info["memory"]["categories"]`` block so predicted and measured
    compare key for key; ``scale`` applies a calibration factor from
    :func:`fit_memory_model`.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    r = bytes_per_nonzero
    b = batches
    a_piece = r * max_nnz_a
    b_piece = r * max_nnz_b
    bcast = r * max_nnz_a + math.ceil(r * max_nnz_b / b)
    if overlap == "depth1":
        bcast *= 2
    scratch = math.ceil(r * max_nnz_c / b)
    fiber = scratch if layers > 1 else 0
    recv_buffer = bcast + fiber
    if keep_output:
        if nnz_c is not None:
            held = r * min(max_nnz_c, math.ceil(imbalance * nnz_c / nprocs))
        else:
            held = r * max_nnz_c  # no-merge-compression upper bound
        output = held
    else:
        held = 0
        output = scratch
    inputs = a_piece + b_piece
    total = inputs + max(
        recv_buffer + scratch + (held * (b - 1)) // b, held
    )
    categories = {
        "a_piece": a_piece,
        "b_piece": b_piece,
        "recv_buffer": recv_buffer,
        "merge_scratch": scratch,
        "output_batch": output,
        "checkpoint": 0,
    }
    return {
        "categories": {
            cat: int(round(v * scale)) for cat, v in categories.items()
        },
        "high_water_total": int(round(total * scale)),
        "basis": basis,
        "params": {
            "nprocs": nprocs,
            "layers": layers,
            "batches": b,
            "keep_output": keep_output,
            "overlap": overlap,
            "bytes_per_nonzero": r,
            "scale": scale,
        },
    }


def predict_kernel_memory(
    kernel,
    a,
    b,
    aux=None,
    *,
    nprocs: int,
    layers: int = 1,
    batches: int = 1,
    keep_output: bool = True,
    overlap: str = "off",
) -> dict:
    """Per-process footprint of a :class:`~repro.kernels.LocalKernel` run.

    Dispatches to the kernel's own geometry-exact
    :meth:`~repro.kernels.LocalKernel.predict_memory` (dense operand
    panels are sized from the actual grid geometry, not nonzero counts);
    kernels that defer to the symbolic statistics — SpGEMM — fall back to
    the Table III closed form :func:`predict_memory` with the analytic
    :func:`estimate_max_tile_stats` stand-ins.  The returned block is
    shaped like ``info["memory"]["model"]`` either way.
    """
    # lazy import: repro.kernels sits above the model layer
    from ..kernels import get_kernel

    kern = get_kernel(kernel)
    predicted = kern.predict_memory(
        a, b, aux,
        nprocs=nprocs, layers=layers, batches=batches,
        keep_output=keep_output, overlap=overlap,
    )
    if predicted is not None:
        return predicted
    from ..sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz

    stats = estimate_max_tile_stats(
        nnz_a=a.nnz,
        nnz_b=b.nnz,
        nnz_c=symbolic_nnz(a, b),
        flops=symbolic_flops(a, b),
        nprocs=nprocs,
        layers=layers,
    )
    return predict_memory(
        nprocs=nprocs,
        layers=layers,
        batches=batches,
        keep_output=keep_output,
        overlap=overlap,
        basis="analytic",
        **stats,
    )


@dataclass(frozen=True)
class MemoryFit:
    """Calibration of the memory model against measured ledgers.

    ``scale`` multiplies the predicted total into the measured one in the
    least-squares sense; ``category_scale`` does the same per category
    (categories never observed stay at 1.0).  ``mean_abs_error`` is the
    mean of ``|predicted * scale - measured| / measured`` over the
    observations — the residual the calibration could not remove.
    """

    scale: float
    category_scale: dict = field(default_factory=dict)
    mean_abs_error: float = 0.0

    def apply(self, predicted: dict) -> dict:
        """Rescale a :func:`predict_memory` block by this fit."""
        out = dict(predicted)
        out["high_water_total"] = int(round(predicted["high_water_total"] * self.scale))
        out["categories"] = {
            cat: int(round(v * self.category_scale.get(cat, self.scale)))
            for cat, v in predicted.get("categories", {}).items()
        }
        return out


def _totals(block: dict) -> tuple[float, dict]:
    """Accept either a full predicted/measured block or a bare category
    map and return (total, per-category highs)."""
    cats = block.get("categories", block)
    highs = {
        cat: float(v["high_water"] if isinstance(v, dict) else v)
        for cat, v in cats.items()
    }
    total = float(block.get("high_water_total", sum(highs.values())))
    return total, highs


def fit_memory_model(observations) -> MemoryFit:
    """Least-squares fit of predicted → measured memory (through the
    origin), in the style of :func:`repro.model.calibrate.fit_machine`.

    ``observations`` is an iterable of ``(predicted, measured)`` pairs,
    each a :func:`predict_memory`-shaped block or the measured
    ``info["memory"]`` block (bare ``{category: bytes}`` maps also work).
    """
    obs = list(observations)
    if not obs:
        raise ValueError("fit_memory_model needs at least one observation")
    num = den = 0.0
    cat_num: dict[str, float] = {}
    cat_den: dict[str, float] = {}
    totals = []
    for predicted, measured in obs:
        p_total, p_cats = _totals(predicted)
        m_total, m_cats = _totals(measured)
        num += p_total * m_total
        den += p_total * p_total
        totals.append((p_total, m_total))
        for cat, p in p_cats.items():
            m = m_cats.get(cat, 0.0)
            cat_num[cat] = cat_num.get(cat, 0.0) + p * m
            cat_den[cat] = cat_den.get(cat, 0.0) + p * p
    scale = num / den if den else 1.0
    category_scale = {
        cat: (cat_num[cat] / cat_den[cat]) if cat_den[cat] else 1.0
        for cat in cat_den
    }
    errors = [
        abs(p * scale - m) / m for p, m in totals if m
    ]
    mean_abs_error = sum(errors) / len(errors) if errors else 0.0
    return MemoryFit(
        scale=scale, category_scale=category_scale, mean_abs_error=mean_abs_error
    )
