"""repro.mem — first-class per-rank memory accounting.

See :mod:`repro.mem.ledger` for the category ↔ Table III mapping and the
enforcement semantics.
"""

from .ledger import (
    CATEGORIES,
    ENFORCE_MODES,
    MemAllocation,
    MemoryLedger,
    nbytes_of,
    resolve_budget,
)

__all__ = [
    "CATEGORIES",
    "ENFORCE_MODES",
    "MemAllocation",
    "MemoryLedger",
    "nbytes_of",
    "resolve_budget",
]
