"""Per-rank categorized memory accounting — the single source of truth
for bytes.

Every byte-touching layer charges a :class:`MemoryLedger` through tracked
:meth:`~MemoryLedger.acquire`/:meth:`~MemoryLedger.release` handles (or a
:meth:`~MemoryLedger.scope` context manager), under one of six categories
that map one-to-one onto the per-process memory terms of the paper's
Table III / Sec. III-B:

===============  ====================================================
category         Table III / Sec. III-B term
===============  ====================================================
``a_piece``      resident input tile  ``r * nnz(A_ik)``
``b_piece``      resident input tile  ``r * nnz(B_kj)``
``recv_buffer``  broadcast pieces in flight (``r * nnz(Â)``,
                 ``r * nnz(B̂) / b``) and AllToAll-Fiber pieces;
                 depth-1 overlap doubles the in-flight term
``merge_scratch``  unmerged partial results ``r * nnz(Ĉ_ij) / b``
                 (stage partials, merged layer result)
``output_batch``  the finished batch output tile, and — when the
                 caller keeps the product — accumulated pieces
``checkpoint``   driver-side checkpoint write buffers
===============  ====================================================

``r`` is ``BYTES_PER_NONZERO`` (24 B: an 8 B row index, an 8 B value and
an amortised 8 B of column-pointer/metadata — the paper's accounting
unit), which :attr:`repro.sparse.SparseMatrix.nbytes` also reports, so
ledger totals and symbolic predictions share one unit.

The ledger is *continuous* (every acquire/release moves ``current``)
with monotone per-category and total high-water marks, per-batch peaks
(:meth:`enter_batch`), and momentary :meth:`touch` spikes for wire
deliveries that are immediately handed to a tracked handle.  Budget
enforcement happens only at :meth:`check` — the executors call it at
stage boundaries — so a ``strict`` overrun raises a *deterministic*
:class:`~repro.errors.MemoryBudgetExceededError` at the same program
point on every run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..errors import MemoryBudgetExceededError

__all__ = [
    "CATEGORIES",
    "ENFORCE_MODES",
    "MemAllocation",
    "MemoryLedger",
    "nbytes_of",
    "resolve_budget",
]

#: ledger categories, in reporting order (see module docstring for the
#: mapping onto the paper's Table III terms).
CATEGORIES = (
    "a_piece",
    "b_piece",
    "recv_buffer",
    "merge_scratch",
    "output_batch",
    "checkpoint",
)

#: supported settings of the ``enforce=`` knob.
ENFORCE_MODES = ("off", "warn", "strict")

#: cap on warnings retained per ledger / merged report.
_MAX_WARNINGS = 32


def nbytes_of(obj) -> int:
    """Uniform ``nbytes`` protocol: the tracked size of ``obj`` in bytes.

    Anything with an ``nbytes`` attribute (:class:`~repro.sparse.SparseMatrix`
    at ``r`` bytes per nonzero, :class:`~repro.sparse.dcsc.DcscMatrix`,
    numpy arrays) reports it directly; memoryviews report their mapped
    extent; lists/tuples sum their elements; ``None`` is free.  This is
    the one place that decides how an object is priced, so every layer
    charges the same number for the same thing.

    Zero-copy process-world receives deliver arrays that *view* a shared
    segment (``repro.mp``).  They price identically to owned arrays —
    ``ndarray.nbytes`` reports the mapped bytes regardless of ownership
    — and are charged exactly once, at delivery, to the receiver's
    ``recv_buffer`` category: transport decode never touches the ledger,
    so a payload is never double-counted between sender and receiver.
    """
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (list, tuple)):
        return sum(nbytes_of(x) for x in obj)
    if hasattr(obj, "payload") and hasattr(obj, "crc"):
        # a transit Envelope (checksummed payload): priced as its payload
        # plus the 8-byte checksum word.  Duck-typed so the memory layer
        # never imports the simmpi wire format; Envelope has __slots__
        # and no nbytes attribute, so without this branch a checksummed
        # delivery would price as zero.
        return nbytes_of(obj.payload) + 8
    return 0


def resolve_budget(
    memory_budget: int | None,
    memory_budget_per_rank: int | None,
    nprocs: int,
) -> tuple[int | None, int | None]:
    """The one documented aggregate ↔ per-rank budget conversion.

    The paper's Alg. 3 takes the *aggregate* budget ``M`` over all
    processes and works with the per-process share ``M / p`` (line 12);
    ledger enforcement is inherently *per rank*.  Historically
    ``memory_budget`` silently meant both.  Callers now pass exactly one:

    * ``memory_budget`` — aggregate bytes ``M``; the per-rank limit is
      ``M / nprocs`` (floor).
    * ``memory_budget_per_rank`` — per-rank bytes; the aggregate used by
      the symbolic step is ``nprocs *`` that.

    Returns ``(aggregate, per_rank)`` (both ``None`` when neither is
    given) and raises :class:`ValueError` when both are set — the silent
    unit mismatch this function exists to kill.
    """
    if memory_budget is not None and memory_budget_per_rank is not None:
        raise ValueError(
            "pass either memory_budget (aggregate bytes across all "
            "processes) or memory_budget_per_rank (bytes per process), "
            "not both — they differ by a factor of nprocs"
        )
    if memory_budget_per_rank is not None:
        per_rank = int(memory_budget_per_rank)
        if per_rank <= 0:
            raise ValueError(f"memory_budget_per_rank must be > 0, got {per_rank}")
        return per_rank * int(nprocs), per_rank
    if memory_budget is not None:
        aggregate = int(memory_budget)
        if aggregate <= 0:
            raise ValueError(f"memory_budget must be > 0, got {aggregate}")
        return aggregate, aggregate // int(nprocs)
    return None, None


class MemAllocation:
    """A live tracked allocation — the handle :meth:`MemoryLedger.acquire`
    returns and :meth:`MemoryLedger.release` consumes.  ``nbytes`` may be
    adjusted in place via :meth:`MemoryLedger.resize` (postprocess hooks
    replace the output tile)."""

    __slots__ = ("category", "nbytes", "label", "live")

    def __init__(self, category: str, nbytes: int, label: str | None) -> None:
        self.category = category
        self.nbytes = int(nbytes)
        self.label = label
        self.live = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.live else "released"
        return (
            f"MemAllocation({self.category!r}, {self.nbytes} B, "
            f"label={self.label!r}, {state})"
        )


class MemoryLedger:
    """Categorized per-rank byte accounting with budget enforcement.

    Thread-safe (the driver-side checkpoint ledger is charged from rank
    threads); each SPMD rank normally owns a private instance.
    """

    def __init__(
        self,
        *,
        rank=None,
        budget: int | None = None,
        enforce: str = "off",
        batches: int | None = None,
    ) -> None:
        if enforce not in ENFORCE_MODES:
            raise ValueError(
                f"unknown enforce mode {enforce!r}; expected one of {ENFORCE_MODES}"
            )
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be > 0 bytes, got {budget}")
        self.rank = rank
        self.budget = None if budget is None else int(budget)
        self.enforce = enforce
        #: current batch count — attached to strict overruns so the
        #: driver's graceful-degradation path knows what to double.
        self.batches = batches
        self._lock = threading.Lock()
        self._current = dict.fromkeys(CATEGORIES, 0)
        self._high_water = dict.fromkeys(CATEGORIES, 0)
        self._total = 0
        self._total_high_water = 0
        self._batch: int | None = None
        self._batch_peaks: dict[int, int] = {}
        self._warnings: list[dict] = []
        self._warned = False

    # ------------------------------------------------------------------ #
    # tracked allocations
    # ------------------------------------------------------------------ #

    def acquire(
        self, category: str, nbytes: int, label: str | None = None
    ) -> MemAllocation:
        """Charge ``nbytes`` under ``category`` and return the handle."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown ledger category {category!r}; expected one of {CATEGORIES}"
            )
        alloc = MemAllocation(category, max(0, int(nbytes)), label)
        with self._lock:
            self._charge(category, alloc.nbytes)
        return alloc

    def release(self, alloc: MemAllocation | None) -> None:
        """Return an allocation.  ``None`` and double-release are no-ops,
        so op bodies can release unconditionally."""
        if alloc is None or not alloc.live:
            return
        alloc.live = False
        with self._lock:
            self._charge(alloc.category, -alloc.nbytes)

    def resize(self, alloc: MemAllocation, nbytes: int) -> None:
        """Adjust a live allocation in place (e.g. a postprocess hook
        replaced the tile it tracks)."""
        if not alloc.live:
            raise ValueError("cannot resize a released allocation")
        nbytes = max(0, int(nbytes))
        with self._lock:
            self._charge(alloc.category, nbytes - alloc.nbytes)
        alloc.nbytes = nbytes

    @contextmanager
    def scope(self, category: str, nbytes: int, label: str | None = None):
        """``with ledger.scope("checkpoint", n):`` — acquire on entry,
        release on exit, exception-safe."""
        alloc = self.acquire(category, nbytes, label)
        try:
            yield alloc
        finally:
            self.release(alloc)

    def touch(self, category: str, nbytes: int) -> None:
        """Record a momentary spike: bytes that exist *now* (a payload on
        the wire being handed over) but are immediately re-tracked by the
        receiving op's handle.  Moves the high-water marks, not
        ``current``."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown ledger category {category!r}; expected one of {CATEGORIES}"
            )
        nbytes = max(0, int(nbytes))
        if nbytes == 0:
            return
        with self._lock:
            self._charge(category, nbytes)
            self._charge(category, -nbytes)

    def _charge(self, category: str, delta: int) -> None:
        # lock held by caller
        cur = self._current[category] + delta
        if cur < 0:  # released more than acquired — accounting bug
            raise ValueError(
                f"ledger category {category!r} would go negative ({cur} B)"
            )
        self._current[category] = cur
        if cur > self._high_water[category]:
            self._high_water[category] = cur
        self._total += delta
        if self._total > self._total_high_water:
            self._total_high_water = self._total
        if self._batch is not None and self._total > self._batch_peaks[self._batch]:
            self._batch_peaks[self._batch] = self._total

    # ------------------------------------------------------------------ #
    # batch boundaries and enforcement
    # ------------------------------------------------------------------ #

    def enter_batch(self, batch: int) -> None:
        """Mark the start of (or continuation into) a batch; subsequent
        peaks are also recorded per batch."""
        if batch == self._batch:
            return
        with self._lock:
            self._batch = batch
            peak = self._batch_peaks.get(batch, 0)
            self._batch_peaks[batch] = max(peak, self._total)

    def check(self, *, batch=None, stage=None, where: str = "stage boundary") -> None:
        """Enforce the budget (executors call this at stage boundaries).

        ``strict`` raises :class:`~repro.errors.MemoryBudgetExceededError`
        the first time the high-water mark exceeds the per-rank budget —
        deterministic, because the high-water mark is a pure function of
        the program, not of timing.  ``warn`` records one warning.
        """
        if self.budget is None or self.enforce == "off":
            return
        if self._total_high_water <= self.budget:
            return
        if self.enforce == "strict":
            err = MemoryBudgetExceededError(
                f"rank {self.rank}: measured high-water "
                f"{self._total_high_water} B exceeds the per-rank budget "
                f"{self.budget} B at {where} (batch={batch}, stage={stage})",
                batches=self.batches,
            )
            err.context = {
                "rank": self.rank,
                "high_water_total": self._total_high_water,
                "budget_per_rank": self.budget,
                "batch": batch,
                "stage": stage,
            }
            raise err
        if not self._warned:
            self._warned = True
            with self._lock:
                if len(self._warnings) < _MAX_WARNINGS:
                    self._warnings.append({
                        "rank": self.rank,
                        "high_water_total": int(self._total_high_water),
                        "budget_per_rank": int(self.budget),
                        "batch": batch,
                        "stage": stage,
                    })

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    @property
    def current_total(self) -> int:
        return self._total

    @property
    def high_water_total(self) -> int:
        return self._total_high_water

    def current(self, category: str) -> int:
        return self._current[category]

    def high_water(self, category: str) -> int:
        return self._high_water[category]

    def batch_peak(self, batch: int) -> int:
        """Peak total bytes observed while executing ``batch`` (0 if the
        batch was never entered) — the replanner's measured-memory input."""
        return self._batch_peaks.get(batch, 0)

    def report(self) -> dict:
        """This rank's contribution to the uniform ``info["memory"]``
        block (see :meth:`merge_reports`)."""
        with self._lock:
            return {
                "rank": self.rank,
                "high_water_total": int(self._total_high_water),
                "current_total": int(self._total),
                "categories": {
                    cat: {
                        "high_water": int(self._high_water[cat]),
                        "current": int(self._current[cat]),
                    }
                    for cat in CATEGORIES
                    if self._high_water[cat]
                },
                "batch_peaks": {
                    int(b): int(peak) for b, peak in sorted(self._batch_peaks.items())
                },
                "budget_per_rank": self.budget,
                "enforce": self.enforce,
                "warnings": list(self._warnings),
            }

    @staticmethod
    def merge_reports(reports) -> dict:
        """Fold per-rank :meth:`report` dicts into the uniform
        ``info["memory"]`` block: high-water marks are maxima over ranks
        (the per-*process* peak, the paper's quantity), per-batch peaks
        likewise, warnings concatenate (bounded)."""
        reports = [r for r in reports if r]
        merged: dict = {
            "high_water_total": 0,
            "per_rank_high_water": [],
            "categories": {},
            "batch_peaks": {},
            "budget_per_rank": None,
            "enforce": "off",
            "warnings": [],
        }
        if not reports:
            return merged
        merged["budget_per_rank"] = reports[0].get("budget_per_rank")
        merged["enforce"] = reports[0].get("enforce", "off")
        for rep in reports:
            hw = int(rep.get("high_water_total", 0))
            merged["per_rank_high_water"].append(hw)
            merged["high_water_total"] = max(merged["high_water_total"], hw)
            for cat, stats in rep.get("categories", {}).items():
                slot = merged["categories"].setdefault(cat, {"high_water": 0})
                slot["high_water"] = max(
                    slot["high_water"], int(stats.get("high_water", 0))
                )
            for b, peak in rep.get("batch_peaks", {}).items():
                b = int(b)
                merged["batch_peaks"][b] = max(
                    merged["batch_peaks"].get(b, 0), int(peak)
                )
            for warning in rep.get("warnings", ()):
                if len(merged["warnings"]) < _MAX_WARNINGS:
                    merged["warnings"].append(warning)
        merged["batch_peaks"] = dict(sorted(merged["batch_peaks"].items()))
        return merged
