"""Recovery machinery for faults injected (or, one day, real).

The injection side lives in :mod:`repro.simmpi.faults`; this package is
the side that *survives* it:

* :class:`RetryPolicy` — bounded, deterministic retry of transiently
  failed communication attempts, applied inside both
  :class:`~repro.comm.CommBackend` implementations and the symbolic
  step.  Backoff is *simulated* (recorded, never slept, never random) so
  faulty runs stay exactly reproducible.
* :class:`CheckpointManager` — a manifest-backed, atomically written
  checkpoint directory over the batch granularity of BatchedSUMMA3D
  (paper Alg. 4): each completed batch is durable the moment the last
  rank finishes it, so ``batched_summa3d(..., checkpoint_dir=...,
  resume=True)`` restarts from the last completed batch instead of
  batch 0.
* graceful degradation — a :class:`~repro.errors.MemoryPressureError`
  makes the driver double the batch count (the paper's own memory
  lever) and rerun, rather than die.
* online healing (:mod:`repro.resilience.heal`) — ULFM-style
  continue-through-failure: a rank crash revokes the communicators,
  survivors agree on a repaired grid (spare promotion or host-pool
  shrink + respawn) and the run resumes in place from the checkpointed
  batch boundary, bit-identical to a fault-free run.
"""

# Order matters: repro.summa.core (pulled in transitively by .heal via
# repro.summa.trace) imports RetryPolicy from this partially-initialised
# package, so .retry and .checkpoint must be bound before .heal runs.
from .checkpoint import CheckpointManager, run_key
from .retry import RetryPolicy
from .heal import HEAL_MODES, HealContext, HealingBody

__all__ = [
    "RetryPolicy", "CheckpointManager", "run_key",
    "HealContext", "HealingBody", "HEAL_MODES",
]
