"""Manifest-backed batch-granular checkpointing for BatchedSUMMA3D.

The batched algorithm's natural unit of durable progress is the batch:
once every rank has finished batch ``i``'s Finalize, the batch's column
block of ``C`` is complete and never revisited.  A
:class:`CheckpointManager` owns a directory holding

* ``manifest.json`` — ``{"version", "run_key", "batches", "completed":
  {"<batch>": {"file", "spans", "nnz"}}}``;
* one ``batch_<i>.npz`` per completed batch (written via the atomic
  :func:`~repro.sparse.io.save_matrix`).

Write ordering makes crashes safe at any instant: the batch file is
replaced atomically *first*, then the manifest (also an atomic
``os.replace``).  A manifest entry therefore always points at a fully
written file, and a run killed mid-batch leaves the previous batches
intact and trusted.

``run_key`` fingerprints the multiplication (operand contents + the
configuration that determines batch geometry), so a resume against
different inputs or a different grid is rejected instead of silently
mixing incompatible column blocks.  The batch count is deliberately
*outside* the key: ``resume=True`` with ``batches=None`` adopts the
manifest's count, and memory-pressure re-batching resets the directory
(doubling ``b`` changes the block-cyclic column geometry, so old batch
files are useless).
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import nullcontext

from ..errors import CheckpointError
from ..simmpi.serialization import payload_checksum
from ..sparse.io import load_matrix, save_matrix
from ..sparse.matrix import SparseMatrix

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: execution-plan knobs that determine the batch files' column geometry —
#: a resume under a plan differing in any of these would mix incompatible
#: column blocks.  Deliberately *excludes* knobs a replan may legally
#: change between attempts (``comm_backend``) or that do not shape the
#: output (budgets, overlap, world/transport, timeouts, resilience).
PLAN_GEOMETRY_KEYS = (
    "nprocs", "layers", "kernel", "suite", "semiring",
    "batch_scheme", "merge_policy", "mask_complement", "bytes_per_nonzero",
)


def run_key(a, b, **config) -> str:
    """Deterministic fingerprint of one multiplication.

    Covers the operand contents (CRC of the structural arrays) and every
    keyword given (grid shape, batch scheme, merge policy, suite,
    semiring, ...).  Operands that are not plain
    :class:`~repro.sparse.matrix.SparseMatrix` (e.g. pre-distributed
    :class:`~repro.summa.core.TileSource`) contribute their shape only.
    """
    def _ident(m):
        if isinstance(m, SparseMatrix):
            return m
        return ["shape", int(m.nrows), int(m.ncols)]

    items = [[k, str(v)] for k, v in sorted(config.items())]
    return f"{payload_checksum([_ident(a), _ident(b), items]):08x}"


class CheckpointManager:
    """Atomic, manifest-backed checkpoint directory for one batched run.

    Thread-safe: :meth:`write_batch` is called from whichever rank thread
    happens to complete a batch's final piece.
    """

    def __init__(self, directory, keep_last: int | None = None, *,
                 ledger=None) -> None:
        if keep_last is not None and keep_last < 1:
            raise CheckpointError(
                f"keep_last must be >= 1 (got {keep_last}): the newest "
                "completed batch is the resume point and cannot be pruned"
            )
        self.directory = os.fspath(directory)
        self.keep_last = keep_last
        #: optional :class:`~repro.mem.MemoryLedger` the serialization
        #: buffer of each batch write is charged to (category
        #: ``"checkpoint"``) — driver-side memory, so the driver passes
        #: its own ledger here, never a rank's.
        self.ledger = ledger
        self._lock = threading.Lock()
        self._manifest: dict | None = None
        #: durable-write meters: batches written and matrix payload
        #: bytes serialised by this manager.  World-independent by
        #: construction — checkpoint writes always run in the driver
        #: (under ``world="processes"`` via the DriverCallback bridge),
        #: so a healthy process run writes byte-for-byte what the
        #: threaded reference writes; tests pin that parity.
        self.batches_written = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------ #
    # shared-root layout (concurrent jobs)
    # ------------------------------------------------------------------ #

    @staticmethod
    def run_dir(root, key: str) -> str:
        """The per-run subdirectory for ``key`` under a shared root.

        Concurrent jobs sharing one checkpoint root (the serving pool's
        normal shape) must never share a *directory*: ``gc()`` and
        ``keep_last`` pruning are manifest-driven, and two manifests in
        one directory would collect each other's ``batch_*.npz``.  The
        key is sanitised to a filesystem-safe slug; the directory is
        created on demand.
        """
        slug = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in str(key)
        ) or "run"
        path = os.path.join(os.fspath(root), f"run_{slug}")
        os.makedirs(path, exist_ok=True)
        return path

    @classmethod
    def for_run(cls, root, key: str, keep_last: int | None = None, *,
                ledger=None) -> "CheckpointManager":
        """A manager rooted at ``run_dir(root, key)`` — the safe way for
        concurrent jobs to checkpoint under one shared root."""
        return cls(cls.run_dir(root, key), keep_last, ledger=ledger)

    # ------------------------------------------------------------------ #
    # manifest lifecycle
    # ------------------------------------------------------------------ #

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _batch_path(self, batch: int) -> str:
        return os.path.join(self.directory, f"batch_{int(batch)}.npz")

    def load_manifest(self) -> dict | None:
        """Read and adopt the on-disk manifest; ``None`` when absent."""
        if not os.path.exists(self.manifest_path):
            return None
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self.manifest_path!r}: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != MANIFEST_VERSION
            or "run_key" not in manifest
            or "batches" not in manifest
            or not isinstance(manifest.get("completed"), dict)
        ):
            raise CheckpointError(
                f"malformed checkpoint manifest {self.manifest_path!r}"
            )
        self._manifest = manifest
        return manifest

    def start_run(self, key: str, batches: int, plan: dict | None = None) -> None:
        """Begin a fresh run: write an empty manifest for ``key``.

        ``plan`` is the run's serialised execution plan
        (:meth:`repro.plan.ExecSpec.to_dict`), embedded in the manifest so
        a resumed run can *prove* it resumes under the same plan geometry
        rather than trusting the caller."""
        os.makedirs(self.directory, exist_ok=True)
        self._manifest = {
            "version": MANIFEST_VERSION,
            "run_key": str(key),
            "batches": int(batches),
            "completed": {},
        }
        if plan is not None:
            self._manifest["plan"] = dict(plan)
        self._write_manifest()

    def resume_run(
        self, key: str, batches: int | None = None, plan: dict | None = None
    ) -> tuple[int, int]:
        """Adopt an existing manifest for ``key``.

        Returns ``(batches, first_batch)`` — the run's batch count (the
        manifest's when ``batches`` is ``None``) and the first batch that
        still needs computing.  Raises :class:`~repro.errors.CheckpointError`
        when the directory belongs to a different multiplication, a
        conflicting batch count, or (when both sides carry one) a plan
        whose geometry-bearing knobs differ from the manifest's, and
        falls back to a fresh run when no manifest exists yet.
        """
        manifest = self.load_manifest()
        if manifest is None:
            if batches is None:
                raise CheckpointError(
                    f"nothing to resume in {self.directory!r} and no batch "
                    "count given (pass batches= or memory_budget=)"
                )
            self.start_run(key, batches, plan)
            return batches, 0
        if manifest["run_key"] != str(key):
            raise CheckpointError(
                f"checkpoint {self.directory!r} belongs to run_key "
                f"{manifest['run_key']!r}, not {key!r} — different operands "
                "or configuration; refusing to mix column blocks"
            )
        if batches is not None and int(batches) != int(manifest["batches"]):
            raise CheckpointError(
                f"checkpoint {self.directory!r} was written with "
                f"batches={manifest['batches']}, cannot resume with "
                f"batches={batches} (batch geometry differs)"
            )
        stored = manifest.get("plan")
        if plan is not None and stored is not None:
            diffs = {
                k: (stored.get(k), plan.get(k))
                for k in PLAN_GEOMETRY_KEYS
                if stored.get(k) != plan.get(k)
            }
            if diffs:
                raise CheckpointError(
                    f"checkpoint {self.directory!r} was written under a "
                    f"different execution plan: {diffs} (stored vs resumed); "
                    "the batch files' column geometry would not match"
                )
        return int(manifest["batches"]), self.completed_prefix()

    def reset(self, key: str, batches: int, plan: dict | None = None) -> None:
        """Invalidate everything (batch geometry changed — re-batching)
        and start over with the new batch count."""
        with self._lock:
            manifest = self._manifest
            if manifest is not None:
                for entry in manifest["completed"].values():
                    try:
                        os.remove(os.path.join(self.directory, entry["file"]))
                    except OSError:
                        pass
        self.start_run(key, batches, plan)

    def _write_manifest(self) -> None:
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._manifest, fh, indent=1, sort_keys=True)
        os.replace(tmp, self.manifest_path)

    # ------------------------------------------------------------------ #
    # batch data
    # ------------------------------------------------------------------ #

    def completed_prefix(self) -> int:
        """Number of leading batches durably completed (``0..k-1``).

        Only the contiguous prefix counts: the driver replays consumption
        in batch order, and the engine guarantees batches complete in
        order anyway (a rank cannot reach batch ``i``'s collectives before
        every rank passed batch ``i-1``).
        """
        manifest = self._require_manifest()
        k = 0
        while str(k) in manifest["completed"]:
            entry = manifest["completed"][str(k)]
            if not entry.get("pruned") and not os.path.exists(
                os.path.join(self.directory, entry["file"])
            ):
                raise CheckpointError(
                    f"manifest lists batch {k} but {entry['file']!r} is "
                    f"missing from {self.directory!r}"
                )
            k += 1
        return k

    def write_batch(self, batch: int, spans, matrix: SparseMatrix) -> None:
        """Durably record one completed batch (file first, then manifest)."""
        path = self._batch_path(batch)
        scope = (
            nullcontext()
            if self.ledger is None
            else self.ledger.scope(
                "checkpoint", matrix.nbytes, label=f"batch_{int(batch)}"
            )
        )
        with self._lock, scope:
            manifest = self._require_manifest()
            save_matrix(path, matrix)
            manifest["completed"][str(int(batch))] = {
                "file": os.path.basename(path),
                "spans": [[int(c0), int(c1)] for c0, c1 in spans],
                "nnz": int(matrix.nnz),
            }
            self.batches_written += 1
            self.bytes_written += int(matrix.nbytes)
            if self.keep_last is not None:
                self._prune_locked(self.keep_last)
            self._write_manifest()

    def io_stats(self) -> dict:
        """Durable-write meters (``{"batches_written", "bytes_written"}``)
        for checkpoint-parity assertions across execution worlds."""
        with self._lock:
            return {
                "batches_written": int(self.batches_written),
                "bytes_written": int(self.bytes_written),
            }

    def load_batch(self, batch: int) -> tuple[list, SparseMatrix]:
        """Load one completed batch back as ``(spans, matrix)``."""
        manifest = self._require_manifest()
        entry = manifest["completed"].get(str(int(batch)))
        if entry is None:
            raise CheckpointError(
                f"batch {batch} is not recorded in {self.manifest_path!r}"
            )
        if entry.get("pruned"):
            raise CheckpointError(
                f"batch {batch} was garbage-collected (keep_last pruning); "
                "its data is gone — rerun without keep_last (or with a "
                "larger value) when batch output must be reassembled"
            ).with_context(batch=int(batch), file=entry["file"])
        matrix = load_matrix(os.path.join(self.directory, entry["file"]))
        if matrix.nnz != entry["nnz"]:
            raise CheckpointError(
                f"batch {batch} file holds {matrix.nnz} nonzeros but the "
                f"manifest recorded {entry['nnz']} — truncated write?"
            )
        spans = [(int(c0), int(c1)) for c0, c1 in entry["spans"]]
        return spans, matrix

    # ------------------------------------------------------------------ #
    # garbage collection
    # ------------------------------------------------------------------ #

    def _prune_locked(self, keep_last: int) -> list[str]:
        """Prune completed-batch files beyond the newest ``keep_last``.

        Caller holds ``self._lock`` and writes the manifest afterwards.
        Entries stay in the manifest marked ``"pruned"`` so
        :meth:`completed_prefix` still counts them (resume never replays
        a pruned batch) while :meth:`load_batch` fails loudly on them.
        """
        manifest = self._require_manifest()
        done = sorted(
            (int(k) for k, e in manifest["completed"].items()
             if not e.get("pruned")),
            reverse=True,
        )
        removed = []
        for batch in done[keep_last:]:
            entry = manifest["completed"][str(batch)]
            try:
                os.remove(os.path.join(self.directory, entry["file"]))
            except OSError:
                pass
            entry["pruned"] = True
            removed.append(entry["file"])
        return removed

    def gc(self, keep_last: int | None = None) -> dict:
        """Manifest-driven garbage collection of the checkpoint directory.

        Removes every ``batch_*.npz`` / ``*.tmp`` file the active
        manifest does not reference — the debris superseded runs leave
        behind (mem-pressure re-batching writes a fresh manifest but a
        crash can strand the old geometry's files; ``reset`` only removes
        what *its* manifest listed).  With ``keep_last`` (defaulting to
        the manager's knob) additionally prunes all but the newest
        ``keep_last`` completed batches, keeping their manifest entries
        as tombstones so the resume point is unaffected.

        Returns ``{"orphans_removed": [...], "pruned": [...]}``.
        """
        if keep_last is None:
            keep_last = self.keep_last
        with self._lock:
            manifest = self._require_manifest()
            referenced = {MANIFEST_NAME}
            referenced.update(
                e["file"] for e in manifest["completed"].values()
            )
            orphans = []
            for name in sorted(os.listdir(self.directory)):
                if name in referenced:
                    continue
                path = os.path.join(self.directory, name)
                # plain files only: sibling run_<key> subdirectories
                # (other jobs under a shared root) are never this
                # manager's to collect
                if not os.path.isfile(path):
                    continue
                if name.endswith(".tmp") or (
                    name.startswith("batch_") and name.endswith(".npz")
                ):
                    try:
                        os.remove(path)
                        orphans.append(name)
                    except OSError:
                        pass
            pruned = [] if keep_last is None else self._prune_locked(keep_last)
            if pruned:
                self._write_manifest()
        return {"orphans_removed": orphans, "pruned": pruned}

    def _require_manifest(self) -> dict:
        if self._manifest is None:
            raise CheckpointError(
                "checkpoint manager has no active manifest — call "
                "start_run()/resume_run() first"
            )
        return self._manifest

    def __repr__(self) -> str:
        return f"CheckpointManager({self.directory!r})"
