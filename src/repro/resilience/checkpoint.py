"""Manifest-backed batch-granular checkpointing for BatchedSUMMA3D.

The batched algorithm's natural unit of durable progress is the batch:
once every rank has finished batch ``i``'s Finalize, the batch's column
block of ``C`` is complete and never revisited.  A
:class:`CheckpointManager` owns a directory holding

* ``manifest.json`` — ``{"version", "run_key", "batches", "completed":
  {"<batch>": {"file", "spans", "nnz"}}}``;
* one ``batch_<i>.npz`` per completed batch (written via the atomic
  :func:`~repro.sparse.io.save_matrix`).

Write ordering makes crashes safe at any instant: the batch file is
replaced atomically *first*, then the manifest (also an atomic
``os.replace``).  A manifest entry therefore always points at a fully
written file, and a run killed mid-batch leaves the previous batches
intact and trusted.

``run_key`` fingerprints the multiplication (operand contents + the
configuration that determines batch geometry), so a resume against
different inputs or a different grid is rejected instead of silently
mixing incompatible column blocks.  The batch count is deliberately
*outside* the key: ``resume=True`` with ``batches=None`` adopts the
manifest's count, and memory-pressure re-batching resets the directory
(doubling ``b`` changes the block-cyclic column geometry, so old batch
files are useless).
"""

from __future__ import annotations

import json
import os
import threading

from ..errors import CheckpointError
from ..simmpi.serialization import payload_checksum
from ..sparse.io import load_matrix, save_matrix
from ..sparse.matrix import SparseMatrix

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def run_key(a, b, **config) -> str:
    """Deterministic fingerprint of one multiplication.

    Covers the operand contents (CRC of the structural arrays) and every
    keyword given (grid shape, batch scheme, merge policy, suite,
    semiring, ...).  Operands that are not plain
    :class:`~repro.sparse.matrix.SparseMatrix` (e.g. pre-distributed
    :class:`~repro.summa.core.TileSource`) contribute their shape only.
    """
    def _ident(m):
        if isinstance(m, SparseMatrix):
            return m
        return ["shape", int(m.nrows), int(m.ncols)]

    items = [[k, str(v)] for k, v in sorted(config.items())]
    return f"{payload_checksum([_ident(a), _ident(b), items]):08x}"


class CheckpointManager:
    """Atomic, manifest-backed checkpoint directory for one batched run.

    Thread-safe: :meth:`write_batch` is called from whichever rank thread
    happens to complete a batch's final piece.
    """

    def __init__(self, directory) -> None:
        self.directory = os.fspath(directory)
        self._lock = threading.Lock()
        self._manifest: dict | None = None

    # ------------------------------------------------------------------ #
    # manifest lifecycle
    # ------------------------------------------------------------------ #

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _batch_path(self, batch: int) -> str:
        return os.path.join(self.directory, f"batch_{int(batch)}.npz")

    def load_manifest(self) -> dict | None:
        """Read and adopt the on-disk manifest; ``None`` when absent."""
        if not os.path.exists(self.manifest_path):
            return None
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self.manifest_path!r}: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != MANIFEST_VERSION
            or "run_key" not in manifest
            or "batches" not in manifest
            or not isinstance(manifest.get("completed"), dict)
        ):
            raise CheckpointError(
                f"malformed checkpoint manifest {self.manifest_path!r}"
            )
        self._manifest = manifest
        return manifest

    def start_run(self, key: str, batches: int) -> None:
        """Begin a fresh run: write an empty manifest for ``key``."""
        os.makedirs(self.directory, exist_ok=True)
        self._manifest = {
            "version": MANIFEST_VERSION,
            "run_key": str(key),
            "batches": int(batches),
            "completed": {},
        }
        self._write_manifest()

    def resume_run(self, key: str, batches: int | None = None) -> tuple[int, int]:
        """Adopt an existing manifest for ``key``.

        Returns ``(batches, first_batch)`` — the run's batch count (the
        manifest's when ``batches`` is ``None``) and the first batch that
        still needs computing.  Raises :class:`~repro.errors.CheckpointError`
        when the directory belongs to a different multiplication or a
        conflicting batch count, and falls back to a fresh run when no
        manifest exists yet.
        """
        manifest = self.load_manifest()
        if manifest is None:
            if batches is None:
                raise CheckpointError(
                    f"nothing to resume in {self.directory!r} and no batch "
                    "count given (pass batches= or memory_budget=)"
                )
            self.start_run(key, batches)
            return batches, 0
        if manifest["run_key"] != str(key):
            raise CheckpointError(
                f"checkpoint {self.directory!r} belongs to run_key "
                f"{manifest['run_key']!r}, not {key!r} — different operands "
                "or configuration; refusing to mix column blocks"
            )
        if batches is not None and int(batches) != int(manifest["batches"]):
            raise CheckpointError(
                f"checkpoint {self.directory!r} was written with "
                f"batches={manifest['batches']}, cannot resume with "
                f"batches={batches} (batch geometry differs)"
            )
        return int(manifest["batches"]), self.completed_prefix()

    def reset(self, key: str, batches: int) -> None:
        """Invalidate everything (batch geometry changed — re-batching)
        and start over with the new batch count."""
        with self._lock:
            manifest = self._manifest
            if manifest is not None:
                for entry in manifest["completed"].values():
                    try:
                        os.remove(os.path.join(self.directory, entry["file"]))
                    except OSError:
                        pass
        self.start_run(key, batches)

    def _write_manifest(self) -> None:
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._manifest, fh, indent=1, sort_keys=True)
        os.replace(tmp, self.manifest_path)

    # ------------------------------------------------------------------ #
    # batch data
    # ------------------------------------------------------------------ #

    def completed_prefix(self) -> int:
        """Number of leading batches durably completed (``0..k-1``).

        Only the contiguous prefix counts: the driver replays consumption
        in batch order, and the engine guarantees batches complete in
        order anyway (a rank cannot reach batch ``i``'s collectives before
        every rank passed batch ``i-1``).
        """
        manifest = self._require_manifest()
        k = 0
        while str(k) in manifest["completed"]:
            entry = manifest["completed"][str(k)]
            if not os.path.exists(os.path.join(self.directory, entry["file"])):
                raise CheckpointError(
                    f"manifest lists batch {k} but {entry['file']!r} is "
                    f"missing from {self.directory!r}"
                )
            k += 1
        return k

    def write_batch(self, batch: int, spans, matrix: SparseMatrix) -> None:
        """Durably record one completed batch (file first, then manifest)."""
        path = self._batch_path(batch)
        with self._lock:
            manifest = self._require_manifest()
            save_matrix(path, matrix)
            manifest["completed"][str(int(batch))] = {
                "file": os.path.basename(path),
                "spans": [[int(c0), int(c1)] for c0, c1 in spans],
                "nnz": int(matrix.nnz),
            }
            self._write_manifest()

    def load_batch(self, batch: int) -> tuple[list, SparseMatrix]:
        """Load one completed batch back as ``(spans, matrix)``."""
        manifest = self._require_manifest()
        entry = manifest["completed"].get(str(int(batch)))
        if entry is None:
            raise CheckpointError(
                f"batch {batch} is not recorded in {self.manifest_path!r}"
            )
        matrix = load_matrix(os.path.join(self.directory, entry["file"]))
        if matrix.nnz != entry["nnz"]:
            raise CheckpointError(
                f"batch {batch} file holds {matrix.nnz} nonzeros but the "
                f"manifest recorded {entry['nnz']} — truncated write?"
            )
        spans = [(int(c0), int(c1)) for c0, c1 in entry["spans"]]
        return spans, matrix

    def _require_manifest(self) -> dict:
        if self._manifest is None:
            raise CheckpointError(
                "checkpoint manager has no active manifest — call "
                "start_run()/resume_run() first"
            )
        return self._manifest

    def __repr__(self) -> str:
        return f"CheckpointManager({self.directory!r})"
