"""Bounded deterministic retry of transient communication faults.

A :class:`RetryPolicy` wraps an individual communication attempt — one
``bcast``, one ``isend``, one ``recv``, one ``alltoallv`` — and re-runs
it when it raises :class:`~repro.errors.TransientCommError`.  Injection
happens at operation *entry* (see
:meth:`repro.simmpi.faults.FaultInjector.on_attempt`), before the
operation touches any shared rendezvous state, so re-calling it on the
failing rank alone is always alignment-safe: the peers are still parked
in the collective, waiting.

Backoff is **simulated**: the policy computes the exponential delay a
real system would sleep, records it in the tracker and the injector's
event log, and does *not* sleep and does *not* draw randomness — a
faulty run is a pure function of the fault plan.
"""

from __future__ import annotations

from ..errors import TransientCommError

#: tracker op label for a retried communication attempt.
RETRY_OP = "retry"


class RetryPolicy:
    """Retry transiently-failing communication attempts, boundedly.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first failure; attempt ``max_retries + 1``
        failing re-raises the :class:`~repro.errors.TransientCommError`.
    backoff_base:
        Simulated delay before the first retry, in seconds.
    multiplier:
        Exponential backoff factor between consecutive retries.
    """

    __slots__ = ("max_retries", "backoff_base", "multiplier")

    def __init__(
        self,
        max_retries: int = 3,
        *,
        backoff_base: float = 0.001,
        multiplier: float = 2.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.multiplier = float(multiplier)

    def backoff(self, attempt: int) -> float:
        """Simulated delay before retry number ``attempt`` (1-based)."""
        return self.backoff_base * self.multiplier ** (attempt - 1)

    def call(self, fn, *, comm=None, op: str = ""):
        """Run ``fn()``; on :class:`~repro.errors.TransientCommError`,
        record a retry event and run it again, up to ``max_retries``
        times.  ``comm`` (a :class:`~repro.simmpi.comm.SimComm`) routes
        the bookkeeping: one zero-byte ``"retry"`` event in the shared
        tracker plus one :class:`~repro.simmpi.faults.FaultEvent` with
        the simulated backoff."""
        attempt = 0
        while True:
            try:
                return fn()
            except TransientCommError:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                backoff_s = self.backoff(attempt)
                if comm is not None:
                    world = comm.world
                    world.tracker.record(
                        world.step_label, RETRY_OP, 2, 0, 0,
                        backend=world.backend_label,
                    )
                    if world.injector is not None:
                        world.injector.record_retry(
                            comm.global_rank, op, world.step_label,
                            attempt, backoff_s,
                        )

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_base={self.backoff_base}, multiplier={self.multiplier})"
        )
