"""Bounded deterministic retry of transient communication faults.

A :class:`RetryPolicy` wraps an individual communication attempt — one
``bcast``, one ``isend``, one ``recv``, one ``alltoallv`` — and re-runs
it when it raises :class:`~repro.errors.TransientCommError`.  Injection
happens at operation *entry* (see
:meth:`repro.simmpi.faults.FaultInjector.on_attempt`), before the
operation touches any shared rendezvous state, so re-calling it on the
failing rank alone is always alignment-safe: the peers are still parked
in the collective, waiting.

Backoff is world-aware:

* **threads** (the deterministic reference) — backoff is **simulated**:
  the policy computes the exponential delay a real system would sleep,
  records it in the tracker and the injector's event log, and does *not*
  sleep and does *not* draw randomness — a faulty run is a pure function
  of the fault plan.
* **processes** (``world.real_backoff`` is true) — the retrying rank is
  a real OS process contending for a real queue, so the policy actually
  sleeps: the same exponential schedule plus a small deterministic
  de-synchronisation jitter (a pure function of ``(rank, attempt)``, no
  RNG), the whole delay clamped to :attr:`RetryPolicy.sleep_cap` so an
  injected fault storm can never stall a worker near its watchdog
  deadline.  The *recorded* backoff is the slept value, keeping
  ``fault_stats`` faithful to what the run actually did.
"""

from __future__ import annotations

import time

from ..errors import TransientCommError

#: tracker op label for a retried communication attempt.
RETRY_OP = "retry"


class RetryPolicy:
    """Retry transiently-failing communication attempts, boundedly.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first failure; attempt ``max_retries + 1``
        failing re-raises the :class:`~repro.errors.TransientCommError`.
    backoff_base:
        Delay before the first retry, in seconds (simulated under
        threads, slept under processes).
    multiplier:
        Exponential backoff factor between consecutive retries.
    sleep_cap:
        Upper bound, in seconds, on any single *real* sleep (process
        world only); also caps the jitter's contribution.
    """

    __slots__ = ("max_retries", "backoff_base", "multiplier", "sleep_cap")

    def __init__(
        self,
        max_retries: int = 3,
        *,
        backoff_base: float = 0.001,
        multiplier: float = 2.0,
        sleep_cap: float = 0.05,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.multiplier = float(multiplier)
        if sleep_cap <= 0:
            raise ValueError(f"sleep_cap must be > 0, got {sleep_cap}")
        self.sleep_cap = float(sleep_cap)

    def backoff(self, attempt: int) -> float:
        """Base delay before retry number ``attempt`` (1-based)."""
        return self.backoff_base * self.multiplier ** (attempt - 1)

    def jitter(self, rank: int, attempt: int) -> float:
        """Deterministic de-synchronisation jitter for a real sleep.

        A pure function of ``(rank, attempt)`` — no RNG, so a retried
        process run remains a function of the fault plan — spreading
        simultaneous retriers across ``[0, backoff_base)`` seconds.
        """
        mix = (int(rank) * 2654435761 + int(attempt) * 40503) % 1024
        return self.backoff_base * (mix / 1024.0)

    def real_backoff(self, rank: int, attempt: int) -> float:
        """The bounded delay a process-world retry actually sleeps."""
        return min(self.backoff(attempt) + self.jitter(rank, attempt),
                   self.sleep_cap)

    def call(self, fn, *, comm=None, op: str = ""):
        """Run ``fn()``; on :class:`~repro.errors.TransientCommError`,
        record a retry event and run it again, up to ``max_retries``
        times.  ``comm`` (a :class:`~repro.simmpi.comm.SimComm`) routes
        the bookkeeping: one zero-byte ``"retry"`` event in the shared
        tracker plus one :class:`~repro.simmpi.faults.FaultEvent` with
        the (simulated or slept) backoff.  When the comm's world flags
        ``real_backoff`` (the process world), the policy sleeps
        :meth:`real_backoff` seconds before re-calling."""
        attempt = 0
        while True:
            try:
                return fn()
            except TransientCommError:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                backoff_s = self.backoff(attempt)
                world = comm.world if comm is not None else None
                if world is not None and getattr(world, "real_backoff", False):
                    backoff_s = self.real_backoff(comm.global_rank, attempt)
                    time.sleep(backoff_s)
                if comm is not None:
                    world.tracker.record(
                        world.step_label, RETRY_OP, 2, 0, 0,
                        backend=world.backend_label,
                    )
                    if world.injector is not None:
                        world.injector.record_retry(
                            comm.global_rank, op, world.step_label,
                            attempt, backoff_s,
                        )

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_base={self.backoff_base}, multiplier={self.multiplier})"
        )
