"""Online recovery: continue a BatchedSUMMA3D run through a rank crash.

PR 3 made crashes survivable *by restart*; this layer makes them
survivable **in place**, following MPI's ULFM model (revoke → agree →
repair → continue):

1. The crashing rank's death revokes every live communicator
   (:meth:`~repro.simmpi.membership.Membership.declare_dead` bumps the
   world's revoke epoch; survivors observe
   :class:`~repro.errors.RankRevokedError` at op entry or inside the
   rendezvous they are blocked in).
2. :class:`HealingBody` — the SPMD body the engine runs under
   ``heal=`` — catches the revocation and joins the deterministic
   survivor agreement (:meth:`Membership.agree`).
3. The published :class:`~repro.simmpi.membership.HealDecision` repairs
   the grid: a parked **spare** rank is promoted into the dead position
   (``mode="spare"``), or a fresh rank is **respawned** oversubscribed
   onto the lowest surviving host (``mode="shrink"`` — host-pool
   shrink).  The logical grid never changes: floating-point reductions
   do not compose across grid geometries, so preserving bit-identical
   results requires preserving the stage/layer decomposition.
4. Every holder re-enters the run on fresh epoch-``e`` communicators:
   grid communicators are re-split, operand tiles re-extracted (the
   bytes moved to the *new* holder are metered as redistribution
   traffic), the execution plan re-compiled from the decision's
   ``restart_batch`` — the last batch made durable by the per-batch
   checkpoint — and the multiplication continues.

:class:`HealContext` is the driver-side half: it owns the heal knobs,
links the membership layer to the checkpoint manager and the driver's
piece collector, and accumulates the per-event report that surfaces as
``info["resilience"]["heal"]``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import HealError, RankRevokedError
from ..simmpi.membership import epoch_comm
from ..summa.trace import STEP_HEAL, TraceSpan

HEAL_MODES = ("spare", "shrink")


class HealContext:
    """Driver-side coordination and reporting for one healing run.

    Parameters
    ----------
    mode:
        ``"spare"`` (promote a parked spare rank) or ``"shrink"``
        (shrink the host pool; respawn the position oversubscribed onto
        a survivor host).
    checkpoint:
        The run's :class:`~repro.resilience.checkpoint.CheckpointManager`.
        Healing requires checkpointing: the restart point of every heal
        is the durable completed-batch prefix.
    collector:
        The driver's piece collector (its partially gathered batches are
        dropped on heal and recomputed), or ``None``.
    first_batch:
        Batch the run started from (resume support).
    max_rounds:
        Heal-round budget: more than this many revoke epochs fails the
        run with :class:`~repro.errors.HealError`.
    """

    def __init__(self, mode: str, *, checkpoint=None, collector=None,
                 first_batch: int = 0, max_rounds: int = 8) -> None:
        if mode not in HEAL_MODES:
            raise HealError(
                f"unknown heal mode {mode!r}; expected one of {HEAL_MODES}"
            )
        self.mode = mode
        self.checkpoint = checkpoint
        self.collector = collector
        self.first_batch = int(first_batch)
        self.max_rounds = int(max_rounds)
        self.events: list[dict] = []
        self._lock = threading.Lock()

    # ---- hooks called by the membership layer ------------------------ #

    def restart_point(self) -> int:
        """Durable re-entry batch: the completed checkpoint prefix."""
        if self.checkpoint is None:
            return self.first_batch
        return max(self.checkpoint.completed_prefix(), self.first_batch)

    def on_decision(self, decision) -> None:
        """A heal decision was published: drop half-gathered batches
        (they restart from the checkpoint boundary) and open the event
        record for this epoch."""
        if self.collector is not None:
            self.collector.drop_pending()
        with self._lock:
            event = decision.describe()
            event["bytes_redistributed"] = 0
            event["latency_s"] = 0.0
            self.events.append(event)

    # ---- hooks called by the healing bodies -------------------------- #

    def add_bytes(self, epoch: int, nbytes: int) -> None:
        """Meter operand bytes moved to a repaired position."""
        with self._lock:
            for event in self.events:
                if event["epoch"] == epoch:
                    event["bytes_redistributed"] += int(nbytes)
                    return

    def add_latency(self, epoch: int, seconds: float) -> None:
        """Record one rank's recovery latency; the event keeps the max
        across ranks (the run resumes when the slowest rank has)."""
        with self._lock:
            for event in self.events:
                if event["epoch"] == epoch:
                    event["latency_s"] = max(event["latency_s"],
                                             round(seconds, 6))
                    return

    # ---- reporting --------------------------------------------------- #

    def total_extra_bytes(self) -> int:
        with self._lock:
            return sum(e["bytes_redistributed"] for e in self.events)

    def report(self) -> dict:
        """The ``info["resilience"]["heal"]`` payload."""
        with self._lock:
            return {
                "mode": self.mode,
                "events": [dict(e) for e in self.events],
                "heals": len(self.events),
                "extra_bytes_moved": sum(
                    e["bytes_redistributed"] for e in self.events
                ),
            }


class HealingBody:
    """The SPMD body run under healing: attempt → revoked → agree → re-enter.

    ``attempt(comm, start_batch)`` runs the full per-rank multiplication
    on the given world communicator, re-splitting grid communicators and
    re-compiling the execution plan from ``start_batch``.
    ``join_bytes(position)`` returns the operand bytes a *new* holder of
    ``position`` must receive (its A and B tiles) — the redistribution
    cost metered per heal event.
    """

    def __init__(self, heal_ctx: HealContext,
                 attempt: Callable[..., dict],
                 join_bytes: Callable[[int], int] | None = None) -> None:
        self.heal_ctx = heal_ctx
        self.attempt = attempt
        self.join_bytes = join_bytes
        #: driver callbacks buried in the ``attempt`` closure (e.g. a
        #: piece sink), listed here so the process engine's callback
        #: scan can find and index them.
        self.driver_callbacks: list = []

    def __call__(self, comm, *args, **kwargs):
        """Entry point for primary ranks (engine calls ``fn(comm)``)."""
        comm.world.membership.register_body(self)
        return self.run(comm.world, comm.rank, comm.global_rank)

    def run(self, world, position: int, global_rank: int):
        """Entry point for every holder of ``position`` (primaries,
        promoted spares, respawned ranks)."""
        membership = world.membership
        membership.register_body(self)
        # The process world forks workers, so a worker's ``self.heal_ctx``
        # is a dead copy of the driver's; its world exposes a proxy that
        # ships add_bytes/add_latency to the parent's real HealContext.
        heal = getattr(world, "heal_proxy", None) or self.heal_ctx
        heal_spans: list[tuple[int, float, float]] = []
        decision = membership.current_decision()
        if decision.promoted.get(global_rank) == position:
            # This rank just joined a repaired grid: meter the operand
            # redistribution it receives before taking part.
            if self.join_bytes is not None:
                heal.add_bytes(decision.epoch, self.join_bytes(position))
        while True:
            comm = epoch_comm(world, decision, position)
            try:
                result = self.attempt(comm, decision.restart_batch)
                break
            except RankRevokedError:
                t0 = time.perf_counter()
                decision = membership.agree(global_rank)
                t1 = time.perf_counter()
                heal_spans.append((decision.epoch, t0, t1))
                heal.add_latency(decision.epoch, t1 - t0)
        tracer = result.get("trace") if isinstance(result, dict) else None
        if tracer is not None:
            for epoch, t0, t1 in heal_spans:
                tracer.spans.append(TraceSpan(
                    rank=position, op=STEP_HEAL, stage=epoch, batch=None,
                    nbytes=0, t0=t0, t1=t1, timed=False,
                ))
            tracer.spans.sort(key=lambda sp: sp.t0)
        return result
