"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``multiply``  run BatchedSUMMA3D on matrices from disk (or a generated
              dataset), print the step breakdown and communication meter,
              optionally save the product;
``stats``     print SpGEMM statistics (nnz, flops, compression factor,
              expansion) for a matrix or dataset;
``generate``  materialise a synthetic dataset to a ``.npz`` / ``.mtx`` file;
``predict``   project paper-scale step times with the α–β machine model;
``cluster``   run HipMCL-style Markov clustering on a matrix;
``compare``   run every algorithm family (1D / Cannon / SUMMA2D / SUMMA3D /
              batched) on the same operands and print a communication and
              timing comparison;
``calibrate`` fit machine constants (alpha/beta/rate) from a JSON file of
              measured step breakdowns.

Matrices are loaded by extension: ``.npz`` (native) or ``.mtx``
(MatrixMarket).  Anywhere a path is accepted, ``dataset:<name>`` loads a
scaled Table V dataset instead (e.g. ``dataset:eukarya``).
"""

from __future__ import annotations

import argparse
import sys

from .data.datasets import DATASETS, load_dataset
from .model import CORI_HASWELL, CORI_KNL, CORI_KNL_HT, estimate_batches, predict_steps
from .simmpi import CommTracker
from .sparse import (
    load_matrix,
    load_matrix_market,
    save_matrix,
    save_matrix_market,
    symbolic_flops,
    symbolic_nnz,
    transpose,
)
from .summa import batched_summa3d

MACHINES = {
    "cori-knl": CORI_KNL,
    "cori-haswell": CORI_HASWELL,
    "cori-knl-ht": CORI_KNL_HT,
}


def _load(path):
    if path.startswith("dataset:"):
        return load_dataset(path.split(":", 1)[1]).generate(seed=0)
    if path.endswith(".mtx"):
        return load_matrix_market(path)
    return load_matrix(path)


def _save(path, matrix) -> None:
    if path.endswith(".mtx"):
        save_matrix_market(path, matrix)
    else:
        save_matrix(path, matrix)


def _operands(args):
    a = _load(args.matrix_a)
    if args.aat:
        return a, transpose(a)
    if args.matrix_b is None:
        return a, a
    return a, _load(args.matrix_b)


def cmd_multiply(args) -> int:
    from .errors import SpmdError

    a, b = _operands(args)
    tracker = CommTracker()
    try:
        result = _run_multiply(args, a, b, tracker)
    except SpmdError as err:
        print(f"error: {err}", file=sys.stderr)
        for rank, failure in sorted(err.failures.items()):
            context = getattr(failure, "context", None)
            if context:
                fields = ", ".join(
                    f"{k}={v}" for k, v in sorted(context.items())
                )
                print(f"  rank {rank}: {type(failure).__name__} ({fields})",
                      file=sys.stderr)
            dump = getattr(failure, "dump", None)
            if dump:
                print("  blocked ranks at failure:", file=sys.stderr)
                for blocked_rank in sorted(dump):
                    state = dump[blocked_rank]
                    print(f"    rank {blocked_rank}: {state['op']} "
                          f"tag={state['tag']} waiting on "
                          f"{state['pending']} for {state['blocked_s']}s",
                          file=sys.stderr)
        if args.checkpoint_dir and not args.resume:
            print(f"rerun with --resume to continue from the last "
                  f"completed batch in {args.checkpoint_dir}",
                  file=sys.stderr)
        return 1
    print(f"grid {result.grid!r}, batches = {result.batches}, "
          f"comm backend = {result.info.get('comm_backend', args.comm_backend)}, "
          f"overlap = {result.info.get('overlap', args.overlap)}")
    winfo = result.info.get("world") or {}
    if winfo.get("world") == "processes":
        print(f"world: processes (transport = {winfo.get('transport')}, "
              f"shm {winfo.get('shm_segments', 0)} segment(s) / "
              f"{winfo.get('shm_bytes', 0) / 1e6:.3f} MB, "
              f"{winfo.get('naive_msgs', 0)} pickled message(s))")
    if result.matrix is not None:
        print(f"nnz(C) = {result.matrix.nnz}")
    print(f"peak per-process memory: {result.max_local_bytes / 1e6:.3f} MB")
    mem = result.memory
    if mem:
        if mem.get("budget_per_rank"):
            print(f"  budget: {mem['budget_per_rank'] / 1e6:.3f} MB/rank, "
                  f"enforce = {mem.get('enforce', 'off')}, "
                  f"{len(mem.get('warnings', []))} warning(s)")
        cats = ", ".join(
            f"{name} {entry['high_water'] / 1e6:.3f}"
            for name, entry in sorted(mem.get("categories", {}).items())
        )
        if cats:
            print(f"  high-water by category (MB): {cats}")
        if mem.get("model_error") is not None:
            print(f"  Table III model: "
                  f"{mem['model']['high_water_total'] / 1e6:.3f} MB predicted "
                  f"({mem['model_error']:.2f}x measured)")
    if result.fault_stats is not None:
        fs = result.fault_stats
        injected = ", ".join(
            f"{k}={v}" for k, v in sorted(fs["injected"].items())
        ) or "none"
        print(f"faults: {fs['fired']}/{fs['planned']} fired ({injected}); "
              f"{fs['retries']} retries, "
              f"{fs['simulated_backoff_s'] * 1e3:.3f} ms simulated backoff")
    resilience = result.info.get("resilience")
    if resilience is not None and resilience.get("checkpoint_dir"):
        print(f"checkpoint: {resilience['checkpoint_dir']} "
              f"(resumed from batch {resilience['resumed_from_batch']})")
    if resilience is not None and resilience.get("heal"):
        heal = resilience["heal"]
        print(f"heal: mode={heal['mode']}, {heal['heals']} event(s), "
              f"{heal['extra_bytes_moved']} extra bytes redistributed")
        for event in heal["events"]:
            dead = ", ".join(
                f"position {d['position']} (rank {d['rank']})"
                for d in event["dead"]
            )
            print(f"  epoch {event['epoch']}: lost {dead}; resumed from "
                  f"batch {event['restart_batch']} after "
                  f"{event['latency_s'] * 1e3:.1f} ms")
    if resilience is not None and resilience.get("replans"):
        for event in resilience["replans"]:
            print(f"replan: batch {event['at_batch']} [{event['reason']}] "
                  f"b {event['from']['batches']} -> {event['to']['batches']}, "
                  f"backend {event['from']['backend']} -> "
                  f"{event['to']['backend']}")
    print(result.step_times.format_table("step times (critical path)"))
    print(tracker.format_table())
    if args.trace_out is not None:
        result.export_trace(args.trace_out)
        print(f"trace timeline saved to {args.trace_out} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.output is not None and result.matrix is not None:
        _save(args.output, result.matrix)
        print(f"saved product to {args.output}")
    return 0


def _multiply_spec(args):
    """The CLI's side of the shared spec builder: argparse fields map
    1:1 onto :class:`~repro.plan.ExecSpec` knobs, so the CLI and the
    library surfaces cannot diverge on what a run configuration is."""
    from .plan import ExecSpec

    return ExecSpec.from_kwargs(
        nprocs=args.nprocs,
        layers=args.layers,
        kernel=args.kernel,
        batches=args.batches,
        memory_budget=args.memory_budget,
        memory_budget_per_rank=args.memory_budget_per_rank,
        enforce=args.memory_enforce,
        suite=args.suite,
        comm_backend=args.comm_backend,
        overlap=args.overlap,
        keep_output=args.output is not None or not args.discard,
        checksums=True if args.checksums else None,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        checkpoint_keep_last=args.checkpoint_keep_last,
        heal=args.heal,
        world_spares=args.spares,
        world=args.world,
        transport=args.transport,
        replan=getattr(args, "replan", "off"),
        replan_threshold=getattr(args, "replan_threshold", 0.15),
    )


def _run_multiply(args, a, b, tracker):
    from .summa import run_plan

    mask = _load(args.mask) if getattr(args, "mask", None) else None
    return run_plan(
        a, b, _multiply_spec(args), mask=mask, tracker=tracker,
        faults=args.faults if args.faults else None,
    )


def cmd_stats(args) -> int:
    a, b = _operands(args)
    nnz_c = symbolic_nnz(a, b)
    flops = symbolic_flops(a, b)
    print(f"A: {a.nrows} x {a.ncols}, nnz = {a.nnz}")
    print(f"B: {b.nrows} x {b.ncols}, nnz = {b.nnz}")
    print(f"nnz(C)  = {nnz_c}")
    print(f"flops   = {flops}")
    print(f"cf      = {flops / nnz_c if nnz_c else float('nan'):.3f}")
    print(f"expansion nnz(C)/nnz(A) = {nnz_c / a.nnz if a.nnz else float('nan'):.3f}")
    return 0


def cmd_generate(args) -> int:
    spec = load_dataset(args.dataset)
    matrix = spec.generate(seed=args.seed)
    _save(args.output, matrix)
    print(f"{spec.name}: {matrix.nrows} x {matrix.ncols}, nnz = {matrix.nnz} "
          f"-> {args.output}")
    return 0


def cmd_predict(args) -> int:
    machine = MACHINES[args.machine]
    spec = load_dataset(args.dataset)
    paper = spec.paper
    stats = dict(
        nnz_a=int(paper.nnz_a),
        nnz_b=int(paper.nnz_a),
        nnz_c=int(paper.nnz_c),
        flops=int(paper.flops),
    )
    nprocs = machine.procs_for_cores(args.cores)
    if args.batches is None:
        budget = machine.aggregate_memory(args.cores)
        batches = estimate_batches(
            memory_budget=budget, nprocs=nprocs, layers=args.layers, **stats
        )
    else:
        batches = args.batches
    times = predict_steps(
        machine, nprocs=nprocs, layers=args.layers, batches=batches, **stats
    )
    print(f"{spec.name} @ {args.cores} cores of {machine.name}: "
          f"p = {nprocs}, l = {args.layers}, b = {batches}")
    print(times.format_table("modelled step times"))
    if args.overlap != "off":
        import math

        from .model import overlapped_makespan

        stages = max(1, round(math.sqrt(nprocs / max(args.layers, 1))))
        makespan = overlapped_makespan(
            times, stages=stages, overlap=args.overlap
        )
        print(f"  overlapped makespan ({args.overlap}): {makespan:12.6f} s "
              f"({makespan / times.total():.1%} of sequential)")
    return 0


def cmd_cluster(args) -> int:
    from .apps import markov_cluster

    a = _load(args.matrix_a)
    result = markov_cluster(
        a,
        nprocs=args.nprocs,
        layers=args.layers,
        memory_budget=args.memory_budget,
        inflation=args.inflation,
        max_iterations=args.max_iterations,
    )
    print(f"converged: {result.converged} after {len(result.iterations)} "
          f"iterations; {result.n_clusters} clusters")
    for it in result.iterations:
        print(f"  iter {it.iteration:>3}: b = {it.batches:>3}, "
              f"nnz = {it.nnz:>9}, chaos = {it.chaos:.5f}")
    if args.output:
        import numpy as np

        np.savetxt(args.output, result.labels, fmt="%d")
        print(f"labels saved to {args.output}")
    return 0


def cmd_doctor(args) -> int:
    from .summa.verify import verify_installation

    report = verify_installation(nprocs=args.nprocs)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_triangles(args) -> int:
    from .apps import clustering_coefficients, count_triangles

    a = _load(args.matrix_a)
    count = count_triangles(
        a, nprocs=args.nprocs, layers=args.layers,
        memory_budget=args.memory_budget,
    )
    print(f"triangles: {count}")
    if args.coefficients:
        cc = clustering_coefficients(a, nprocs=args.nprocs)
        nz = cc[cc > 0]
        print(f"mean clustering coefficient: {cc.mean():.5f} "
              f"({nz.mean():.5f} over vertices in triangles)")
    return 0


def cmd_components(args) -> int:
    import numpy as np

    from .apps import connected_components

    a = _load(args.matrix_a)
    labels = connected_components(
        a, nprocs=args.nprocs, layers=args.layers,
        memory_budget=args.memory_budget,
    )
    sizes = np.bincount(labels)
    print(f"components: {sizes.size}")
    print(f"largest: {sizes.max()} vertices; "
          f"singletons: {int((sizes == 1).sum())}")
    if args.output:
        np.savetxt(args.output, labels, fmt="%d")
        print(f"labels saved to {args.output}")
    return 0


def cmd_compare(args) -> int:
    import time

    from .summa import summa2d, summa3d
    from .summa.baselines import cannon2d, spgemm_1d

    a, b = _operands(args)
    nprocs = args.nprocs
    algorithms = [("1D-row", lambda t: spgemm_1d(a, b, nprocs=nprocs, tracker=t))]
    import math

    if math.isqrt(nprocs) ** 2 == nprocs:
        algorithms += [
            ("Cannon", lambda t: cannon2d(a, b, nprocs=nprocs, tracker=t)),
            ("SUMMA2D", lambda t: summa2d(a, b, nprocs=nprocs, tracker=t)),
        ]
    if args.layers > 1 and nprocs % args.layers == 0 and \
            math.isqrt(nprocs // args.layers) ** 2 == nprocs // args.layers:
        algorithms.append((
            f"SUMMA3D l={args.layers}",
            lambda t: summa3d(a, b, nprocs=nprocs, layers=args.layers, tracker=t),
        ))
        algorithms.append((
            f"Batched l={args.layers} b={args.batches}",
            lambda t: batched_summa3d(
                a, b, nprocs=nprocs, layers=args.layers,
                batches=args.batches, tracker=t,
            ),
        ))
    print(f"{'algorithm':<24} {'wall (s)':>10} {'comm bytes':>14} {'nnz(C)':>10}")
    reference = None
    for name, fn in algorithms:
        tracker = CommTracker()
        t0 = time.perf_counter()
        result = fn(tracker)
        wall = time.perf_counter() - t0
        if reference is None:
            reference = result.matrix
        elif result.matrix is not None:
            assert result.matrix.allclose(reference), f"{name} result differs!"
        print(f"{name:<24} {wall:>10.4f} {tracker.total_bytes():>14,} "
              f"{result.matrix.nnz if result.matrix else '-':>10}")
    return 0


def cmd_calibrate(args) -> int:
    import json

    from .model.calibrate import Observation, fit_machine, relative_error

    with open(args.observations, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    observations = [
        Observation(
            nprocs=o["nprocs"],
            layers=o["layers"],
            batches=o["batches"],
            nnz_a=o["nnz_a"],
            nnz_b=o["nnz_b"],
            flops=o["flops"],
            step_seconds=o["step_seconds"],
        )
        for o in raw
    ]
    fitted = fit_machine(observations, name=args.name)
    print(f"fitted machine {fitted.name!r} from {len(observations)} observations:")
    print(f"  alpha       = {fitted.alpha:.3e} s/message")
    print(f"  beta        = {fitted.beta:.3e} s/byte "
          f"({1 / fitted.beta / 1e9:.2f} GB/s effective)")
    print(f"  sparse_rate = {fitted.sparse_rate:.3e} products/s/process")
    print(f"  fit error   = {relative_error(fitted, observations):.1%} "
          f"(mean relative, on the observations)")
    return 0


def cmd_serve(args) -> int:
    """Replay a synthetic multi-tenant trace against a live service and
    print the serving quartet (throughput, latency, rejections, heals)."""
    import tempfile

    from .data.generators import erdos_renyi
    from .errors import AdmissionRejected, ServeError
    from .serve import SpgemmService
    from .simmpi import FaultPlan

    sizes = [int(s) for s in args.sizes.split(",")]
    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    mats = {n: erdos_renyi(n, avg_degree=4.0, seed=100 + n) for n in sizes}
    heal_kwargs = {}
    tmp_root = None
    if args.crash:
        tmp_root = args.checkpoint_root or tempfile.mkdtemp(
            prefix="repro_serve_ck_"
        )
        heal_kwargs = dict(
            heal="spare", world_spares=1, checkpoint_root=tmp_root,
        )
    try:
        with SpgemmService(
            grids=args.grids, nprocs=args.nprocs, world=args.world,
            timeout=args.timeout, queue_capacity=args.queue_capacity,
            max_backlog_s=args.max_backlog_s, **heal_kwargs,
        ) as svc:
            handles, rejected = [], 0
            for j in range(args.jobs):
                tenant = tenants[j % len(tenants)]
                faults = (
                    FaultPlan(["crash:rank=1,op=bcast,nth=2"])
                    if args.crash and j == 0 else None
                )
                try:
                    handles.append(svc.submit(
                        tenant=tenant, a=mats[sizes[j % len(sizes)]],
                        faults=faults,
                    ))
                except AdmissionRejected as exc:
                    rejected += 1
                    print(f"rejected ({exc.reason}): {exc}", file=sys.stderr)
            failures = 0
            for h in handles:
                try:
                    h.result(timeout=args.timeout * 4)
                except ServeError as exc:
                    failures += 1
                    print(f"job failed classified: {exc}", file=sys.stderr)
            stats = svc.stats()
    finally:
        if tmp_root is not None and args.checkpoint_root is None:
            import shutil

            shutil.rmtree(tmp_root, ignore_errors=True)
    lat = stats["latency_s"]
    print(f"completed {stats['counters']['completed']}/{args.jobs} jobs "
          f"({rejected} rejected at admission, {failures} failed), "
          f"heals = {stats['counters']['heals']}, "
          f"reforks = {stats['counters']['reforks']}")
    if lat["n"]:
        print(f"latency: p50 = {lat['p50'] * 1e3:.1f} ms, "
              f"p99 = {lat['p99'] * 1e3:.1f} ms, "
              f"max = {lat['max'] * 1e3:.1f} ms")
    if stats["throughput_jobs_per_s"] is not None:
        print(f"throughput = {stats['throughput_jobs_per_s']:.2f} jobs/s "
              f"over {len(stats['slots'])} grid(s)")
    hits = stats["plan_cache"]["hits"]
    total = hits + stats["plan_cache"]["misses"]
    if total:
        print(f"plan cache: {hits}/{total} hits")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-avoiding, memory-constrained SpGEMM "
        "(Hussain et al., IPDPS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_operands(p):
        p.add_argument("matrix_a", help=".npz/.mtx path or dataset:<name>")
        p.add_argument("matrix_b", nargs="?", default=None,
                       help="second operand (default: square the first)")
        p.add_argument("--aat", action="store_true",
                       help="multiply A by its transpose")

    p = sub.add_parser("multiply", help="run BatchedSUMMA3D")
    add_operands(p)
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--batches", type=int, default=None)
    p.add_argument("--memory-budget", type=int, default=None,
                   help="aggregate budget in bytes (runs the symbolic step)")
    p.add_argument("--memory-budget-per-rank", type=int, default=None,
                   help="the same limit per rank (mutually exclusive with "
                   "--memory-budget)")
    p.add_argument("--memory-enforce", default="off",
                   choices=["off", "warn", "strict"],
                   help="what the per-rank memory ledger does when the "
                   "measured high-water mark exceeds the budget: account "
                   "only, record warnings, or fail the offending stage "
                   "(strict re-batches to 2b via graceful degradation)")
    p.add_argument("--suite", default="esc",
                   choices=["esc", "unsorted-hash", "sorted-heap", "hybrid", "spa"])
    p.add_argument("--kernel", default="spgemm",
                   choices=["spgemm", "masked_spgemm"],
                   help="local kernel: plain SpGEMM, or SpGEMM restricted "
                   "to a mask inside the local multiply (--mask supplies "
                   "the pattern; without it the symbolic product pattern "
                   "is synthesised as the mask prologue)")
    p.add_argument("--mask", default=None, metavar="PATH",
                   help="sparse output mask (.npz/.mtx or dataset:<name>) "
                   "for --kernel masked_spgemm")
    p.add_argument("--comm-backend", default="dense",
                   choices=["dense", "sparse", "auto"],
                   help="operand exchange: dense collectives, SpComm3D-style "
                   "sparse point-to-point, or let the α–β model pick")
    p.add_argument("--overlap", default="off", choices=["off", "depth1"],
                   help="stage pipelining: depth1 prefetches the next "
                   "stage's broadcasts behind the local multiply")
    p.add_argument("--replan", default="off", choices=["off", "auto"],
                   help="mid-run replanning: at batch boundaries fold "
                   "measured per-stage times and memory peaks into the "
                   "cost models and amend the plan (batch count, comm "
                   "backend) when the projected saving clears the "
                   "hysteresis threshold; the product is unchanged")
    p.add_argument("--replan-threshold", type=float, default=0.15,
                   metavar="FRAC",
                   help="hysteresis guard for --replan auto: only amend "
                   "when the projected total is at least this fraction "
                   "below staying the course (default 0.15)")
    p.add_argument("--world", default="threads",
                   choices=["threads", "processes"],
                   help="execution world: the deterministic in-process "
                   "thread simulator, or one OS process per rank with "
                   "shared-memory payload transport (true parallelism; "
                   "bit-identical results)")
    p.add_argument("--transport", default="auto",
                   choices=["naive", "shm", "auto"],
                   help="process-world payload transport: always pickle, "
                   "always shared memory, or pick by payload size "
                   "(ignored for --world threads)")
    p.add_argument("--trace-out", default=None,
                   help="export the per-op trace timeline here as "
                   "chrome://tracing JSON")
    p.add_argument("--output", default=None, help="save product here")
    p.add_argument("--discard", action="store_true",
                   help="discard batches (memory-constrained mode)")
    p.add_argument("--faults", action="append", default=[],
                   metavar="SPEC",
                   help="inject a deterministic fault, e.g. "
                   "'transient:rank=1,op=bcast,nth=2', "
                   "'corrupt:rank=3,op=recv,nth=1', 'crash:rank=2,batch=1', "
                   "'mem-pressure:rank=0,batch=0' (repeatable)")
    p.add_argument("--max-retries", type=int, default=3,
                   help="retry budget per communication attempt for "
                   "injected transient faults")
    p.add_argument("--checksums", action="store_true",
                   help="force per-message envelope checksums on even "
                   "without fault injection")
    p.add_argument("--checkpoint-dir", default=None,
                   help="write a manifest-backed checkpoint of each "
                   "completed batch here")
    p.add_argument("--resume", action="store_true",
                   help="continue from the last completed batch in "
                   "--checkpoint-dir")
    p.add_argument("--checkpoint-keep-last", type=int, default=None,
                   metavar="K",
                   help="garbage-collect all but the newest K checkpointed "
                   "batch files as the run progresses")
    p.add_argument("--heal", default=None, choices=["spare", "shrink"],
                   help="survive rank crashes online (requires "
                   "--checkpoint-dir): promote a parked spare rank, or "
                   "shrink the host pool and respawn the dead position")
    p.add_argument("--spares", type=int, default=0, metavar="N",
                   help="pre-allocate N spare ranks for --heal spare")
    p.set_defaults(func=cmd_multiply)

    p = sub.add_parser("stats", help="symbolic SpGEMM statistics")
    add_operands(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("generate", help="materialise a scaled dataset")
    p.add_argument("dataset", choices=sorted(DATASETS))
    p.add_argument("output")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("predict", help="paper-scale model projection")
    p.add_argument("dataset", choices=sorted(DATASETS))
    p.add_argument("--cores", type=int, default=65536)
    p.add_argument("--layers", type=int, default=16)
    p.add_argument("--batches", type=int, default=None)
    p.add_argument("--machine", default="cori-knl", choices=sorted(MACHINES))
    p.add_argument("--overlap", default="off", choices=["off", "depth1"],
                   help="also report the pipelined makespan "
                   "(max(comm, comp) per stage)")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("doctor", help="verify the installation end to end")
    p.add_argument("--nprocs", type=int, default=4)
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser("triangles", help="triangle counting")
    p.add_argument("matrix_a", help=".npz/.mtx path or dataset:<name>")
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--memory-budget", type=int, default=None)
    p.add_argument("--coefficients", action="store_true",
                   help="also print clustering coefficients")
    p.set_defaults(func=cmd_triangles)

    p = sub.add_parser("components", help="connected components")
    p.add_argument("matrix_a", help=".npz/.mtx path or dataset:<name>")
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--memory-budget", type=int, default=None)
    p.add_argument("--output", default=None, help="save labels here")
    p.set_defaults(func=cmd_components)

    p = sub.add_parser("compare", help="algorithm families head-to-head")
    add_operands(p)
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--batches", type=int, default=2)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("calibrate", help="fit machine constants from JSON")
    p.add_argument("observations", help="JSON list of observation records")
    p.add_argument("--name", default="calibrated")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser(
        "serve", help="replay a multi-tenant job trace against a service"
    )
    p.add_argument("--grids", type=int, default=2, help="resident grids")
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--world", default="threads",
                   choices=["threads", "processes"])
    p.add_argument("--tenants", type=int, default=3)
    p.add_argument("--jobs", type=int, default=12,
                   help="total jobs, round-robin across tenants")
    p.add_argument("--sizes", default="32,48,64",
                   help="comma-separated matrix sizes in the mix")
    p.add_argument("--queue-capacity", type=int, default=16)
    p.add_argument("--max-backlog-s", type=float, default=60.0)
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--crash", action="store_true",
                   help="inject one rank crash (enables heal=spare)")
    p.add_argument("--checkpoint-root", default=None,
                   help="shared checkpoint root for --crash "
                   "(default: a temp dir)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("cluster", help="Markov clustering (HipMCL)")
    p.add_argument("matrix_a", help=".npz/.mtx path or dataset:<name>")
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--memory-budget", type=int, default=None)
    p.add_argument("--inflation", type=float, default=2.0)
    p.add_argument("--max-iterations", type=int, default=40)
    p.add_argument("--output", default=None, help="save labels here")
    p.set_defaults(func=cmd_cluster)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
