"""Transport registry for the process-backed world (ChainerMN-style).

A transport decides how one payload crosses a process boundary:

``naive``
    Pickle everything through the per-rank queue — simple, correct,
    one full copy per hop.
``shm``
    Every ndarray buffer (including the three arrays of a
    :class:`~repro.sparse.SparseMatrix` and anything inside an
    :class:`~repro.simmpi.serialization.Envelope`) is packed into one
    shared-memory segment; only a small descriptor travels through the
    queue, and the receiver maps the segment zero-copy.
``auto``
    ``shm`` for buffers of at least :data:`AUTO_THRESHOLD` bytes,
    ``naive`` inline for anything smaller — the payload-size heuristic
    real communicators use to trade mapping overhead against copies.

Transports are symmetric: every rank of a run uses the same one, chosen
by the ``transport=`` knob on :func:`repro.simmpi.engine.run_spmd`.
Decoded arrays are **read-only** views of the segment — the process
world enforces the "received payloads are read-only" contract the
threaded world can only document.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.serialization import Envelope, payload_nbytes
from ..sparse.matrix import SparseMatrix
from .shm import ALIGN, SegmentRegistry, reap_segment

#: registered transport names, in documentation order.
TRANSPORTS = ("naive", "shm", "auto")

#: ``auto``: buffers at least this large travel via shared memory.
AUTO_THRESHOLD = 32 * 1024


def reap_wire(wire) -> bool:
    """Reap the segment behind an undecoded wire item, if any.

    Heal hygiene: a survivor that drops a stale-epoch message without
    decoding it must still remove the shared-memory segment the wire
    points at — nobody else will (a single-receiver creator already
    closed its handle; a multi-receiver creator may be the dead rank).
    Safe against double-reaps and non-shm wires.  Returns ``True`` when
    a segment was actually removed."""
    if (
        isinstance(wire, tuple)
        and len(wire) == 6
        and wire[0] == "shm"
        and isinstance(wire[1], str)
    ):
        return reap_segment(wire[1])
    return False


def _safe_nbytes(obj) -> int:
    try:
        return payload_nbytes(obj)
    except TypeError:
        return 0


class Transport:
    """Base transport: wire encode/decode plus traffic statistics."""

    name = "?"
    #: minimum array nbytes for shared-memory packing; None = never.
    threshold: int | None = None

    def __init__(self, registry: SegmentRegistry, post_ack=None) -> None:
        self.segments = registry
        #: ``post_ack(creator_rank, name)`` — installed by the world.
        self.post_ack = post_ack
        self.naive_msgs = 0
        self.naive_bytes = 0

    def stats(self) -> dict:
        return {
            "transport": self.name,
            "shm_segments": self.segments.segments,
            "shm_bytes": self.segments.shm_bytes,
            "naive_msgs": self.naive_msgs,
            "naive_bytes": self.naive_bytes,
        }

    # -------------------------------------------------------------- #
    # encode
    # -------------------------------------------------------------- #

    def encode(self, obj, receivers: int = 1):
        """Build the wire form of ``obj`` for ``receivers`` recipients."""
        if self.threshold is None:
            self.naive_msgs += 1
            self.naive_bytes += _safe_nbytes(obj)
            return ("py", obj)
        bufs: list[np.ndarray] = []
        spec = self._spec(obj, bufs)
        if not bufs:
            self.naive_msgs += 1
            self.naive_bytes += _safe_nbytes(obj)
            return ("py", obj)
        offsets, total = _layout(bufs)
        seg = self.segments.create(total)
        for arr, off in zip(bufs, offsets):
            flat = np.ascontiguousarray(arr).reshape(-1)
            np.copyto(
                np.frombuffer(seg.buf, dtype=arr.dtype, count=arr.size,
                              offset=off),
                flat,
            )
        name = seg.name
        self.segments.sent(name, receivers)
        return ("shm", name, self.segments.rank, receivers > 1,
                tuple(offsets), spec)

    def _spec(self, obj, bufs: list):
        if (
            isinstance(obj, np.ndarray)
            and not obj.dtype.hasobject
            and obj.size > 0
            and obj.nbytes >= self.threshold
        ):
            idx = len(bufs)
            bufs.append(obj)
            return ("nd", idx, obj.dtype.str, obj.shape)
        if isinstance(obj, SparseMatrix):
            return (
                "sm", obj.nrows, obj.ncols, bool(obj.sorted_within_columns),
                self._spec(obj.indptr, bufs),
                self._spec(obj.rowidx, bufs),
                self._spec(obj.values, bufs),
            )
        if isinstance(obj, Envelope):
            return ("env", obj.crc, self._spec(obj.payload, bufs))
        if isinstance(obj, list):
            return ("L", [self._spec(x, bufs) for x in obj])
        if isinstance(obj, tuple):
            return ("T", [self._spec(x, bufs) for x in obj])
        if isinstance(obj, dict):
            return ("D", [(k, self._spec(v, bufs)) for k, v in obj.items()])
        return ("o", obj)

    # -------------------------------------------------------------- #
    # decode
    # -------------------------------------------------------------- #

    def decode(self, wire):
        kind = wire[0]
        if kind == "py":
            return wire[1]
        _, name, creator, ack_needed, offsets, spec = wire
        self.segments.adopt(name, owned=not ack_needed)
        if ack_needed and self.post_ack is not None:
            self.post_ack(creator, name)
        return self._build(spec, name, offsets)

    def _build(self, spec, name: str, offsets):
        tag = spec[0]
        if tag == "o":
            return spec[1]
        if tag == "nd":
            _, idx, dstr, shape = spec
            dtype = np.dtype(dstr)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            rec = self.segments.adopted[name]
            arr = np.frombuffer(
                rec.shm.buf, dtype=dtype, count=count, offset=offsets[idx]
            )
            if tuple(shape) != (count,):
                arr = arr.reshape(shape)
            arr.flags.writeable = False
            self.segments.view(name, arr)
            return arr
        if tag == "sm":
            _, nrows, ncols, swc, s_indptr, s_rowidx, s_values = spec
            return SparseMatrix(
                nrows, ncols,
                self._build(s_indptr, name, offsets),
                self._build(s_rowidx, name, offsets),
                self._build(s_values, name, offsets),
                sorted_within_columns=swc, validate=False,
            )
        if tag == "env":
            _, crc, sub = spec
            return Envelope(self._build(sub, name, offsets), crc)
        if tag == "L":
            return [self._build(s, name, offsets) for s in spec[1]]
        if tag == "T":
            return tuple(self._build(s, name, offsets) for s in spec[1])
        if tag == "D":
            return {k: self._build(s, name, offsets) for k, s in spec[1]}
        raise ValueError(f"unknown wire spec tag {tag!r}")


class NaiveTransport(Transport):
    name = "naive"
    threshold = None


class ShmTransport(Transport):
    name = "shm"
    threshold = 1


class AutoTransport(Transport):
    name = "auto"
    threshold = AUTO_THRESHOLD


_REGISTRY = {
    "naive": NaiveTransport,
    "shm": ShmTransport,
    "auto": AutoTransport,
}


def get_transport(name: str) -> type[Transport]:
    """Resolve a transport class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; expected one of {TRANSPORTS}"
        ) from None


def _layout(bufs: list) -> tuple[list[int], int]:
    """Aligned packing offsets for a list of array buffers."""
    offsets: list[int] = []
    pos = 0
    for arr in bufs:
        pos = (pos + ALIGN - 1) // ALIGN * ALIGN
        offsets.append(pos)
        pos += int(arr.nbytes)
    return offsets, max(pos, 1)
