"""Process-backed SPMD engine: one OS process per rank.

Mirrors :func:`repro.simmpi.engine.run_spmd` — same body signature
``fn(comm, *args, **kwargs)``, same per-rank return-value list, same
:class:`~repro.errors.SpmdError` failure semantics with cascade
filtering — but each rank is a forked worker with a real interpreter, so
local SpGEMM kernels run on separate cores instead of time-slicing one
GIL.

Workers are started with the ``fork`` method: the SPMD body, its
arguments, the :class:`~repro.simmpi.faults.FaultInjector` and any
:class:`~repro.mp.bridge.DriverCallback` wrappers are inherited
copy-on-write, so nothing outbound needs to be picklable.  Inbound
traffic (return values, tracker events, exceptions, callback arguments,
heal votes and meters, watchdog wait records) is pickled explicitly in
the worker — errors surface at the call site, not in a queue feeder
thread.

The parent is the resilience coordinator:

* **real crash faults** — an injected ``crash`` fires
  :func:`FaultInjector.crash_action` inside the worker, which ships the
  fault log up, flushes its queues and ``SIGKILL``\\ s itself; the parent
  observes the ``-SIGKILL`` exit code, never a Python traceback, and
  synthesises a :class:`~repro.errors.RankCrashError` with uniform
  ``err.context`` (pid, exit code, signal name, last traced op, epoch);
* **healing** — with ``heal=`` the death becomes an epoch revocation:
  the parent ships ``("ctl", "revoke", epoch)`` to the survivors,
  collects their votes, sweeps the dead rank's leftover shared-memory
  segments (only after every survivor has voted — nothing can attach
  them any more), computes the
  :class:`~repro.simmpi.membership.HealDecision` with the same
  :func:`~repro.simmpi.membership.compute_decision` the threaded world
  uses, and publishes it.  Spare ranks and the shrink-mode respawn pool
  are forked *up front* and parked (queues cannot be created after the
  fork), then promoted by decision;
* **cross-process watchdog** — blocked workers ship their wait records
  after a grace period; the parent assembles the wait-for graph,
  confirms a deadlock cycle over two sweeps (or an exited peer, when no
  heal layer could replace it) and notifies the classified rank, which
  raises the same :class:`~repro.errors.HangError` kinds the threaded
  watchdog produces.  A flat parent deadline slightly above the world
  timeout remains the last backstop.

After all workers are joined, :func:`~repro.mp.shm.sweep_segments`
removes any shared-memory segment a crashed worker left behind.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as _queue
import signal
import sys
import time
from collections.abc import Callable
from typing import Any

from ..errors import CommError, HangError, RankCrashError, SpmdError
from ..simmpi.comm import DEFAULT_TIMEOUT, World
from ..simmpi.membership import HealDecision, compute_decision
from ..simmpi.tracker import CommTracker
from . import bridge
from .bridge import DriverCallback
from .comm import MpComm, MpMembership, MpWorld, _HealProxy
from .shm import sweep_segments
from .transport import TRANSPORTS

_RUN_COUNTER = 0


def _fresh_run_id() -> str:
    global _RUN_COUNTER
    _RUN_COUNTER += 1
    return f"repro-{os.getpid()}-{_RUN_COUNTER}-{os.urandom(3).hex()}"


def _scan_callbacks(fn, args, kwargs) -> list[DriverCallback]:
    """Find DriverCallback wrappers in the launch arguments (shallow,
    plus any the body advertises via ``fn.driver_callbacks`` — healing
    bodies close over their arguments, so scanning ``args`` alone would
    miss them) and assign each its wire index."""
    found: list[DriverCallback] = []
    for value in (*getattr(fn, "driver_callbacks", ()), *args,
                  *kwargs.values()):
        if isinstance(value, DriverCallback) and value not in found:
            value.index = len(found)
            found.append(value)
    return found


def _pickle_exc(rank: int, exc: BaseException) -> bytes:
    try:
        return pickle.dumps(exc)
    except Exception:
        return pickle.dumps(
            RuntimeError(f"rank {rank}: {type(exc).__name__}: {exc!r}")
        )


def _install_crash_action(rt: MpWorld, injector, rank: int) -> None:
    """Make injected ``crash`` faults kill the worker process for real.

    The action ships the fault log to the parent (so the driver's
    injector still reports the event), flushes the results queue and
    abandons the inboxes — a SIGKILL mid-``Queue.put`` would corrupt the
    pipe for everyone — then raises SIGKILL against itself.  The parent
    sees exit code ``-SIGKILL``, exactly what a segfaulted or OOM-killed
    rank looks like."""

    def crash_action(spec, event) -> None:
        op = event.op
        if op is None and event.batch is not None:
            # plan-level crash: its coordinates are (batch, stage)
            op = f"batch {event.batch}" + (
                f" stage {event.stage}" if event.stage is not None else ""
            )
        try:
            events, fired = injector.snapshot()
            rt.results.put(("fault", rank, pickle.dumps((events, fired)),
                            op, event.step))
            rt.results.close()
            rt.results.join_thread()
        except Exception:
            pass
        for q in rt.inboxes:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        os.kill(os.getpid(), signal.SIGKILL)

    injector.crash_action = crash_action


def _park(rt: MpWorld, rank: int):
    """Spare/respawn-pool main loop: pump the inbox until promoted
    (returns ``(position, decision)``) or released (returns ``None``)."""
    deadline = time.monotonic() + rt.timeout * 1.25 + 15.0
    while True:
        if rt.finish_flag or rt.failed.is_set():
            return None
        assigned = rt.membership.assignment(rank)
        if assigned is not None:
            return assigned
        try:
            item = rt.inbox.get(timeout=rt._tick)
        except _queue.Empty:
            item = None
        if item is not None:
            rt._demux(item)
        elif time.monotonic() >= deadline:
            return None


def _worker_main(rank, nprocs, inboxes, results, failed, fn, args, kwargs,
                 timeout, checksums, transport, run_id, injector,
                 heal_info, parked) -> None:
    rt = MpWorld(
        rank, nprocs, inboxes, failed,
        timeout=timeout, checksums=bool(checksums),
        transport=transport, run_id=run_id,
    )
    rt.results = results
    bridge.set_runtime(rt)
    rt.injector = injector
    if injector is not None:
        _install_crash_action(rt, injector, rank)
    if heal_info is not None:
        rt.membership = MpMembership(
            rt, nprocs, heal_info["first_batch"], heal_info["mode"]
        )
        rt.heal_proxy = _HealProxy(rt)
        rt.transport.segments.track_transfers = True
    ok = False
    position = None
    try:
        if parked:
            promotion = _park(rt, rank)
            if promotion is None:
                results.put(("idle", rank))
                ok = True
                return
            position = promotion[0]
            value = fn.run(rt, position, rank)
        else:
            position = rank
            comm = MpComm(rt, ("world",), tuple(range(nprocs)), rank)
            value = fn(comm, *args, **kwargs)
        blob = pickle.dumps(value)
        rt.finish()
        fault_blob = (
            pickle.dumps(injector.snapshot()) if injector is not None
            else None
        )
        results.put((
            "done", rank, position, blob,
            pickle.dumps(rt.tracker.events), rt.transport.stats(),
            fault_blob,
        ))
        ok = True
    except RankCrashError as exc:
        # injected crashes normally die by SIGKILL inside crash_action;
        # a *raised* RankCrashError under healing is still one rank's
        # death, not a run-wide abort — report it and exit nonzero so
        # the parent runs the same revocation path
        rt.abandon()
        if rt.membership is not None:
            results.put(("crashed", rank, _pickle_exc(rank, exc)))
        else:
            failed.set()
            results.put(("err", rank, position, _pickle_exc(rank, exc)))
    except BaseException as exc:  # noqa: BLE001 — reported via SpmdError
        failed.set()
        rt.abandon()
        results.put(("err", rank, position, _pickle_exc(rank, exc)))
    finally:
        # the results queue must always flush — on the failure path the
        # ("err", ...) blob is exactly what the parent is waiting for;
        # peer inboxes may never be drained after a failure, so those
        # are abandoned rather than waited on
        try:
            results.close()
            results.join_thread()
        except Exception:
            pass
        for q in inboxes:
            try:
                q.close()
                if ok:
                    q.join_thread()
                else:
                    q.cancel_join_thread()
            except Exception:
                pass
        sys.stdout.flush()
        sys.stderr.flush()
        # skip interpreter teardown: every segment name is already
        # unlinked (or swept by the parent), and arbitrary destruction
        # order would otherwise spray harmless SharedMemory.__del__
        # BufferErrors over stderr when a handle dies before its views
        os._exit(0 if ok else 1)


class _WaitNode:
    """Adapter giving parent-side wait records the ``.pending`` surface
    :meth:`World._find_cycle` walks."""

    __slots__ = ("pending",)

    def __init__(self, pending) -> None:
        self.pending = tuple(pending)


def run_spmd_processes(
    nprocs: int,
    fn: Callable[..., Any],
    *args,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    checksums: bool | None = None,
    transport: str = "auto",
    world_info: dict | None = None,
    faults=None,
    heal=None,
    world_spares: int = 0,
    **kwargs,
) -> list:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` worker
    processes; same contract as the threaded
    :func:`~repro.simmpi.engine.run_spmd`.

    ``transport`` picks the payload wire format (one of
    :data:`~repro.mp.transport.TRANSPORTS`); ``world_info``, when a
    dict, receives run statistics (transport traffic, swept segments)
    merged across ranks.  ``faults`` is the run's
    :class:`~repro.simmpi.faults.FaultInjector` (already normalised by
    :func:`~repro.simmpi.engine.run_spmd`); ``checksums=None`` means
    "on exactly when faults are injected", as in the threaded world.
    ``heal`` is the driver's
    :class:`~repro.resilience.heal.HealContext`; with it the parent
    coordinates revocation, survivor agreement and spare-park/shrink
    healing as described in the module docstring.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    injector = faults
    checksums = (injector is not None) if checksums is None else bool(checksums)
    ctx = multiprocessing.get_context("fork")
    # Start the resource-tracker daemon *before* forking: all workers
    # then share one tracker, so a segment registered at creation in one
    # rank and unregistered at unlink time in another balances out
    # instead of each rank's private tracker warning about "leaks".
    from multiprocessing import resource_tracker
    resource_tracker.ensure_running()
    run_id = _fresh_run_id()
    if isinstance(world_info, dict):
        # published *before* any worker forks: a resident caller (the
        # DistContext pool) can sweep this run's segments even if the
        # parent dies mid-protocol and never reaches the final update
        world_info["run_id"] = run_id

    # Queues cannot be created after the fork, so the whole worker pool
    # — primaries, parked spares, and the shrink-mode respawn pool — is
    # laid out and forked up front, one inbox per global rank.  Rank
    # numbering matches the threaded engine: spares at nprocs..+spares,
    # respawns from nprocs + spares upward.
    spares = int(world_spares) if heal is not None else 0
    max_rounds = int(heal.max_rounds) if heal is not None else 0
    spare_granks = list(range(nprocs, nprocs + spares))
    respawn_granks = (
        list(range(nprocs + spares, nprocs + spares + max_rounds))
        if heal is not None and heal.mode == "shrink" else []
    )
    total = nprocs + len(spare_granks) + len(respawn_granks)
    heal_info = (
        {"first_batch": heal.first_batch, "mode": heal.mode}
        if heal is not None else None
    )

    inboxes = [ctx.Queue() for _ in range(total)]
    results_q = ctx.Queue()
    failed = ctx.Event()
    callbacks = _scan_callbacks(fn, args, kwargs)

    workers: dict[int, Any] = {}
    for grank in range(total):
        workers[grank] = ctx.Process(
            target=_worker_main,
            args=(grank, nprocs, inboxes, results_q, failed, fn, args,
                  kwargs, float(timeout), checksums, transport, run_id,
                  injector, heal_info, grank >= nprocs),
            name=f"repro-mp-rank-{grank}",
        )
    for w in workers.values():
        w.start()

    # ---------------- parent-side coordinator state ---------------- #
    pending = dict(workers)            # grank -> proc not yet finished
    reported: set[int] = set()         # granks that completed their protocol
    done: dict[int, tuple] = {}        # position -> (vblob, evblob, stats)
    failures: dict[int, BaseException] = {}
    crash_causes: dict[int, BaseException] = {}
    fault_reports: dict[int, tuple] = {}
    waits: dict[int, dict] = {}        # grank -> shipped wait record
    votes: dict[int, set[int]] = {}
    decision = (
        HealDecision(0, tuple(range(nprocs)), heal.first_batch, "initial",
                     hosts={p: p for p in range(nprocs)})
        if heal is not None else None
    )
    healed: dict[int, BaseException] = {}     # position -> crash exc
    dead: set[int] = set()
    swept_dead: set[int] = set()
    heal_swept = 0
    epoch = 0
    parked_pool = list(spare_granks)
    respawn_pool = list(respawn_granks)
    hang_sent: tuple | None = None     # (grank, since) of the live notice
    finish_sent = False
    prev_cycle_sig = None
    parent_deadline_s = float(timeout) * 1.25 + 15.0
    deadline = time.monotonic() + parent_deadline_s
    watch_interval = max(0.25, min(1.0, float(timeout) / 10.0))
    next_watch = time.monotonic() + watch_interval

    def post_ctl(grank: int, item: tuple) -> None:
        try:
            inboxes[grank].put(item)
        except Exception:
            pass

    def handle(msg) -> None:
        nonlocal epoch
        kind = msg[0]
        if kind == "cb":
            callbacks[msg[2]].fn(*pickle.loads(msg[3]))
        elif kind == "done":
            _, grank, position, vblob, evblob, stats, fault_blob = msg
            done[position] = (vblob, evblob, stats)
            reported.add(grank)
            waits.pop(grank, None)
            if fault_blob is not None and injector is not None:
                events, fired = pickle.loads(fault_blob)
                injector.absorb(events, fired)
        elif kind == "err":
            _, grank, position, blob = msg
            key = grank if position is None else position
            try:
                failures[key] = pickle.loads(blob)
            except Exception as exc:
                failures[key] = RuntimeError(
                    f"rank {key}: worker failed (exception did not "
                    f"unpickle: {exc!r})"
                )
            reported.add(grank)
            waits.pop(grank, None)
        elif kind == "crashed":
            _, grank, blob = msg
            try:
                crash_causes[grank] = pickle.loads(blob)
            except Exception:
                pass
            waits.pop(grank, None)
        elif kind == "idle":
            reported.add(msg[1])
        elif kind == "vote":
            votes.setdefault(int(msg[2]), set()).add(int(msg[1]))
        elif kind == "wait":
            waits[msg[1]] = msg[2]
        elif kind == "endwait":
            waits.pop(msg[1], None)
        elif kind == "heal":
            if heal is not None:
                if msg[1] == "bytes":
                    heal.add_bytes(msg[2], msg[3])
                else:
                    heal.add_latency(msg[2], msg[3])
        elif kind == "fault":
            _, grank, blob, op, step = msg
            fault_reports[grank] = (op, step)
            if injector is not None:
                events, fired = pickle.loads(blob)
                injector.absorb(events, fired)

    def drain_now() -> None:
        while True:
            try:
                msg = results_q.get_nowait()
            except _queue.Empty:
                return
            handle(msg)

    def crash_error(grank: int, proc) -> BaseException:
        """Uniform-context RankCrashError for one real worker death."""
        exitcode = proc.exitcode
        signame = None
        if isinstance(exitcode, int) and exitcode < 0:
            try:
                signame = signal.Signals(-exitcode).name
            except ValueError:
                signame = f"signal {-exitcode}"
        last_op = None
        fr = fault_reports.get(grank)
        if fr is not None:
            op, step = fr
            last_op = f"{op} @ {step}" if step else op
        elif grank in waits:
            last_op = waits[grank].get("op")
        cause = crash_causes.get(grank)
        if cause is not None:
            message = str(cause)
        else:
            how = (f"on {signame}" if signame
                   else f"with exit code {exitcode}")
            message = (
                f"rank {grank}: worker process (pid {proc.pid}) died "
                f"{how}" + (f" during {last_op}" if last_op else "")
                + " before reporting a result"
            )
        exc = (cause if isinstance(cause, RankCrashError)
               else RankCrashError(message))
        return exc.with_context(
            rank=grank, pid=proc.pid, exitcode=exitcode, signal=signame,
            last_op=last_op, epoch=epoch,
        )

    def on_exit(grank: int, proc) -> None:
        """One worker process ended: clean completion or a real death."""
        nonlocal epoch
        drain_now()   # its flushed messages happened-before the exit
        if grank in reported and grank not in crash_causes:
            return
        exc = crash_error(grank, proc)
        waits.pop(grank, None)
        if (
            heal is not None
            and decision.mode != "failed"
            and grank in decision.members
            and grank not in dead
        ):
            position = decision.members.index(grank)
            healed[position] = exc
            dead.add(grank)
            epoch += 1
            for m in decision.members:
                if m not in dead and m in pending:
                    post_ctl(m, ("ctl", "revoke", epoch))
            return
        if grank in parked_pool:
            parked_pool.remove(grank)
            return
        if grank in respawn_pool:
            respawn_pool.remove(grank)
            return
        failures.setdefault(grank, exc)
        failed.set()

    def maybe_decide() -> None:
        """Publish the heal decision once every survivor has voted.

        Runs only when the results queue is drained: every stale driver
        callback a survivor (or the flushed dead rank) posted before
        voting has then been consumed, so ``on_decision``'s
        ``drop_pending`` cannot race half-batch pieces arriving late.
        """
        nonlocal decision, heal_swept, finish_sent
        if heal is None or decision.mode == "failed" or epoch <= decision.epoch:
            return
        if failed.is_set():
            # a non-crash failure already aborted the run; don't heal it
            return
        alive = [m for m in decision.members if m not in dead]
        if not set(alive) <= votes.get(epoch, set()):
            return
        # every survivor voted == every survivor abandoned the revoked
        # epoch's ops: the dead ranks' leftover segments are orphans now
        for g in sorted(dead - swept_dead):
            heal_swept += sweep_segments(run_id, rank=g)
            swept_dead.add(g)
        live_parked = [g for g in parked_pool if g in pending]
        need = sum(1 for m in decision.members if m in dead)
        if heal.mode == "shrink" and len(respawn_pool) < need:
            new_decision = HealDecision(
                epoch, decision.members, decision.restart_batch, "failed",
                reason=(
                    f"respawn pool exhausted: {need} position(s) to refill,"
                    f" {len(respawn_pool)} pre-forked worker(s) left"
                ),
            )
        else:
            new_decision, _respawns = compute_decision(
                epoch, decision, dead, heal.mode, heal.restart_point(),
                parked=live_parked,
                alloc_rank=lambda: respawn_pool.pop(0),
                max_rounds=heal.max_rounds,
            )
            # compute_decision popped promotions from the live view;
            # mirror that on the authoritative pool
            for g in list(parked_pool):
                if g in new_decision.promoted:
                    parked_pool.remove(g)
        heal.on_decision(new_decision)
        decision = new_decision
        if decision.mode == "failed":
            for m in decision.members:
                if m not in dead and m in pending:
                    post_ctl(m, ("ctl", "decision", decision))
            for g in parked_pool + respawn_pool:
                if g in pending:
                    post_ctl(g, ("ctl", "finish"))
            finish_sent = True
            return
        for m in decision.members:
            if m not in dead and m in pending:
                post_ctl(m, ("ctl", "decision", decision))

    def notify_hang(grank: int, kind: str, nodes) -> None:
        """Ship a classified hang to one blocked worker, which raises
        the :class:`HangError` (same kinds as the threaded watchdog)."""
        nonlocal hang_sent
        now = time.monotonic()
        involved = sorted({grank, *nodes} & set(waits))
        dump = {}
        lines = []
        for r in involved:
            rec = waits[r]
            blocked = round(max(now - rec["since"], 0.0), 3)
            dump[r] = {
                "rank": r, "pid": rec["pid"], "op": rec["op"],
                "comm": rec["comm"], "tag": rec["tag"], "op_id": None,
                "pending": list(rec["pending"]), "blocked_s": blocked,
                "heartbeat": rec.get("heartbeat", 0),
            }
            lines.append(
                f"  rank {r}: {rec['op']} on {rec['comm']}"
                + (f" tag {rec['tag']}" if rec["tag"] is not None else "")
                + f" waiting on {list(rec['pending'])} for {blocked}s"
                f" in pid {rec['pid']}"
            )
        if kind == "deadlock":
            head = (
                f"deadlock: cyclic wait among ranks "
                f"{' -> '.join(str(r) for r in nodes)} -> {nodes[0]} "
                "(cross-process wait-for graph, confirmed on two sweeps)"
            )
        else:
            rec = waits[grank]
            head = (
                f"rank {grank} (worker process pid {rec['pid']}): "
                f"{rec['op']} waits on rank(s) "
                f"{', '.join(str(p) for p in nodes)} whose worker "
                "process already exited; no heal layer can replace them"
            )
        message = "\n".join([head, *lines])
        target_since = waits[grank]["since"]
        post_ctl(grank, ("ctl", "hang", kind, tuple(nodes), dump, message,
                         target_since))
        hang_sent = (grank, target_since)

    def watchdog_sweep() -> None:
        """Cross-process deadlock / peer-exited classification."""
        nonlocal prev_cycle_sig, hang_sent
        if hang_sent is not None:
            # an outstanding notice is bound to one specific wait; if
            # that wait resolved anyway (the data raced in), the worker
            # dropped the stale notice and the watchdog re-arms
            g, s = hang_sent
            rec = waits.get(g)
            if rec is not None and rec["since"] == s:
                return
            hang_sent = None
        if failed.is_set() or not waits:
            prev_cycle_sig = None
            return
        if heal is None:
            for g in sorted(waits):
                gone = tuple(
                    p for p in waits[g]["pending"]
                    if p in reported or p in dead
                )
                if gone:
                    notify_hang(g, "peer-exited", gone)
                    return
        nodes = {g: _WaitNode(rec["pending"]) for g, rec in waits.items()}
        for g in sorted(nodes):
            cycle = World._find_cycle(nodes, g)
            if cycle:
                sig = tuple((r, waits[r]["since"]) for r in cycle)
                if sig == prev_cycle_sig:
                    notify_hang(cycle[0], "deadlock", tuple(cycle))
                else:
                    prev_cycle_sig = sig
                return
        prev_cycle_sig = None

    # --------------- teardown (every exit path, once) --------------- #
    torn_down: dict = {"swept": None}

    def _teardown() -> int:
        """Reap every worker, sweep this run's shm segments, close the
        queues.  Idempotent, and runs on *every* exit path — including a
        parent-side exception in a driver callback or the heal protocol —
        so a long-lived caller reusing one grid (the serve pool) can
        never accumulate `/dev/shm` debris from failed runs."""
        if torn_down["swept"] is not None:
            return torn_down["swept"]
        if any(w.is_alive() for w in pending.values()):
            failed.set()
        for w in pending.values():
            w.join(timeout=2.0)
        for w in pending.values():
            if w.is_alive():
                w.terminate()
                w.join(timeout=5.0)
        # every worker joined (or was killed): nothing can attach now
        swept = sweep_segments(run_id)
        for q in (*inboxes, results_q):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        torn_down["swept"] = swept
        return swept

    # ------------------------ supervisor loop ----------------------- #
    try:
        while pending:
            try:
                msg = results_q.get(timeout=0.05)
            except _queue.Empty:
                msg = None
            if msg is not None:
                handle(msg)
            for grank, proc in list(pending.items()):
                if proc.is_alive():
                    continue
                proc.join()
                del pending[grank]
                on_exit(grank, proc)
            now = time.monotonic()
            if msg is None:
                # the queue is drained at this instant: safe points for the
                # heal decision (stale callbacks consumed) and the watchdog
                maybe_decide()
                if now >= next_watch:
                    watchdog_sweep()
                    next_watch = now + watch_interval
            if (
                heal is not None
                and not finish_sent
                and len(done) >= nprocs
                and epoch == decision.epoch
            ):
                for g in parked_pool + respawn_pool:
                    if g in pending:
                        post_ctl(g, ("ctl", "finish"))
                finish_sent = True
            if failed.is_set() and heal is not None and not finish_sent:
                for g in parked_pool + respawn_pool:
                    if g in pending:
                        post_ctl(g, ("ctl", "finish"))
                finish_sent = True
            if now >= deadline:
                failed.set()
                break

        drain_now()
    finally:
        swept_clean = _teardown()

    # positions that died and never healed surface their crash error
    for position, exc in healed.items():
        if position not in done:
            failures.setdefault(position, exc)

    for position in range(nprocs):
        if position in done or position in failures:
            continue
        holder = decision.members[position] if heal is not None else position
        w = workers[holder]
        if w.exitcode not in (0, None):
            failures[position] = crash_error(holder, w)
        else:
            failures[position] = HangError(
                f"rank {position}: worker process (pid {w.pid}) produced "
                f"no result within the parent deadline "
                f"({parent_deadline_s:.1f}s) and was terminated",
                kind="timeout",
                dump={position: {
                    "rank": position, "pid": w.pid, "op": "(outside comm)",
                    "tag": None, "pending": [],
                    "blocked_s": round(parent_deadline_s, 3),
                }},
            ).with_context(rank=position, pid=w.pid)

    swept = heal_swept + swept_clean

    results: list[Any] = [None] * nprocs
    stats_rows = []
    for position in sorted(done):
        vblob, evblob, stats = done[position]
        if position not in failures:
            results[position] = pickle.loads(vblob)
        if tracker is not None:
            tracker.extend(pickle.loads(evblob))
        stats_rows.append(stats)

    if isinstance(world_info, dict):
        world_info.update({
            "world": "processes",
            "transport": transport,
            "ranks_reporting": len(stats_rows),
            "shm_segments": sum(s["shm_segments"] for s in stats_rows),
            "shm_bytes": sum(s["shm_bytes"] for s in stats_rows),
            "naive_msgs": sum(s["naive_msgs"] for s in stats_rows),
            "naive_bytes": sum(s["naive_bytes"] for s in stats_rows),
            "swept_segments": swept,
        })
        if heal is not None:
            world_info["heal_epochs"] = decision.epoch
            world_info["heal_swept_segments"] = heal_swept

    if failures:
        genuine = {
            r: e for r, e in failures.items() if not isinstance(e, CommError)
        }
        raise SpmdError(genuine or failures)
    return results
