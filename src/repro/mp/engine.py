"""Process-backed SPMD engine: one OS process per rank.

Mirrors :func:`repro.simmpi.engine.run_spmd` — same body signature
``fn(comm, *args, **kwargs)``, same per-rank return-value list, same
:class:`~repro.errors.SpmdError` failure semantics with cascade
filtering — but each rank is a forked worker with a real interpreter, so
local SpGEMM kernels run on separate cores instead of time-slicing one
GIL.

Workers are started with the ``fork`` method: the SPMD body, its
arguments and any :class:`~repro.mp.bridge.DriverCallback` wrappers are
inherited copy-on-write, so nothing outbound needs to be picklable.
Inbound traffic (return values, tracker events, exceptions, callback
arguments) is pickled explicitly in the worker — errors surface at the
call site, not in a queue feeder thread.

The parent supervises with a deadline slightly above the world timeout:
every in-communicator hang is caught *inside* the stuck worker by its
own watchdog (which names the process PID in the dump); the parent
backstop only fires for a worker wedged outside any communicator wait,
and terminates it.  After all workers are joined,
:func:`~repro.mp.shm.sweep_segments` removes any shared-memory segment a
crashed worker left behind.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as _queue
import sys
import time
from collections.abc import Callable
from typing import Any

from ..errors import CommError, HangError, RankCrashError, SpmdError
from ..simmpi.comm import DEFAULT_TIMEOUT
from ..simmpi.tracker import CommTracker
from . import bridge
from .bridge import DriverCallback
from .comm import MpComm, MpWorld
from .shm import sweep_segments
from .transport import TRANSPORTS

_RUN_COUNTER = 0


def _fresh_run_id() -> str:
    global _RUN_COUNTER
    _RUN_COUNTER += 1
    return f"repro-{os.getpid()}-{_RUN_COUNTER}-{os.urandom(3).hex()}"


def _scan_callbacks(args, kwargs) -> list[DriverCallback]:
    """Find DriverCallback wrappers in the launch arguments (shallow)
    and assign each its wire index."""
    found: list[DriverCallback] = []
    for value in (*args, *kwargs.values()):
        if isinstance(value, DriverCallback):
            value.index = len(found)
            found.append(value)
    return found


def _worker_main(rank, nprocs, inboxes, results, failed, fn, args, kwargs,
                 timeout, checksums, transport, run_id) -> None:
    rt = MpWorld(
        rank, nprocs, inboxes, failed,
        timeout=timeout, checksums=bool(checksums),
        transport=transport, run_id=run_id,
    )
    rt.results = results
    bridge.set_runtime(rt)
    comm = MpComm(rt, ("world",), tuple(range(nprocs)), rank)
    ok = False
    try:
        value = fn(comm, *args, **kwargs)
        blob = pickle.dumps(value)
        rt.finish()
        results.put((
            "done", rank, blob,
            pickle.dumps(rt.tracker.events), rt.transport.stats(),
        ))
        ok = True
    except BaseException as exc:  # noqa: BLE001 — reported via SpmdError
        failed.set()
        rt.abandon()
        try:
            eblob = pickle.dumps(exc)
        except Exception:
            eblob = pickle.dumps(
                RuntimeError(f"rank {rank}: {type(exc).__name__}: {exc!r}")
            )
        results.put(("err", rank, eblob))
    finally:
        # the results queue must always flush — on the failure path the
        # ("err", ...) blob is exactly what the parent is waiting for;
        # peer inboxes may never be drained after a failure, so those
        # are abandoned rather than waited on
        try:
            results.close()
            results.join_thread()
        except Exception:
            pass
        for q in inboxes:
            try:
                q.close()
                if ok:
                    q.join_thread()
                else:
                    q.cancel_join_thread()
            except Exception:
                pass
        sys.stdout.flush()
        sys.stderr.flush()
        # skip interpreter teardown: every segment name is already
        # unlinked (or swept by the parent), and arbitrary destruction
        # order would otherwise spray harmless SharedMemory.__del__
        # BufferErrors over stderr when a handle dies before its views
        os._exit(0 if ok else 1)


def run_spmd_processes(
    nprocs: int,
    fn: Callable[..., Any],
    *args,
    tracker: CommTracker | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    checksums: bool | None = None,
    transport: str = "auto",
    world_info: dict | None = None,
    **kwargs,
) -> list:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` worker
    processes; same contract as the threaded
    :func:`~repro.simmpi.engine.run_spmd`.

    ``transport`` picks the payload wire format (one of
    :data:`~repro.mp.transport.TRANSPORTS`); ``world_info``, when a
    dict, receives run statistics (transport traffic, swept segments)
    merged across ranks.  ``checksums=None`` means off — there is no
    fault injector in this world to turn them on implicitly.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    ctx = multiprocessing.get_context("fork")
    # Start the resource-tracker daemon *before* forking: all workers
    # then share one tracker, so a segment registered at creation in one
    # rank and unregistered at unlink time in another balances out
    # instead of each rank's private tracker warning about "leaks".
    from multiprocessing import resource_tracker
    resource_tracker.ensure_running()
    run_id = _fresh_run_id()
    inboxes = [ctx.Queue() for _ in range(nprocs)]
    results_q = ctx.Queue()
    failed = ctx.Event()
    callbacks = _scan_callbacks(args, kwargs)

    workers = [
        ctx.Process(
            target=_worker_main,
            args=(rank, nprocs, inboxes, results_q, failed, fn, args,
                  kwargs, float(timeout), checksums, transport, run_id),
            name=f"repro-mp-rank-{rank}",
        )
        for rank in range(nprocs)
    ]
    for w in workers:
        w.start()

    done: dict[int, tuple] = {}
    errors: dict[int, bytes] = {}
    deadline = time.monotonic() + float(timeout) * 1.25 + 15.0
    while len(done) + len(errors) < nprocs:
        try:
            msg = results_q.get(timeout=0.05)
        except _queue.Empty:
            msg = None
        if msg is not None:
            kind = msg[0]
            if kind == "cb":
                _, _rank, idx, blob = msg
                callbacks[idx].fn(*pickle.loads(blob))
            elif kind == "done":
                done[msg[1]] = msg[2:]
            else:
                errors[msg[1]] = msg[2]
            continue
        if all(not w.is_alive() for w in workers):
            # dead workers flush their queues before exiting: one more
            # non-blocking sweep picks up anything already in the pipe
            try:
                while True:
                    msg = results_q.get_nowait()
                    if msg[0] == "cb":
                        callbacks[msg[2]].fn(*pickle.loads(msg[3]))
                    elif msg[0] == "done":
                        done[msg[1]] = msg[2:]
                    else:
                        errors[msg[1]] = msg[2]
            except _queue.Empty:
                pass
            break
        if time.monotonic() >= deadline:
            failed.set()
            break

    failures: dict[int, BaseException] = {}
    for rank, blob in errors.items():
        try:
            failures[rank] = pickle.loads(blob)
        except Exception as exc:  # unpicklable worker exception
            failures[rank] = RuntimeError(
                f"rank {rank}: worker failed (exception did not "
                f"unpickle: {exc!r})"
            )

    for w in workers:
        w.join(timeout=2.0)
    for rank, w in enumerate(workers):
        if w.is_alive():
            w.terminate()
            w.join(timeout=5.0)
        if rank in done or rank in failures:
            continue
        if w.exitcode not in (0, None):
            failures[rank] = RankCrashError(
                f"rank {rank}: worker process (pid {w.pid}) died with "
                f"exit code {w.exitcode} before reporting a result"
            ).with_context(rank=rank, pid=w.pid, exitcode=w.exitcode)
        else:
            failures[rank] = HangError(
                f"rank {rank}: worker process (pid {w.pid}) produced no "
                f"result within the parent deadline "
                f"({timeout * 1.25 + 15.0:.1f}s) and was terminated",
                kind="timeout",
                dump={rank: {
                    "rank": rank, "pid": w.pid, "op": "(outside comm)",
                    "tag": None, "pending": [],
                    "blocked_s": round(timeout * 1.25 + 15.0, 3),
                }},
            ).with_context(rank=rank, pid=w.pid)

    # the run is over and every worker joined: nothing can attach now
    swept = sweep_segments(run_id)
    for q in (*inboxes, results_q):
        try:
            q.close()
            q.cancel_join_thread()
        except Exception:
            pass

    results: list[Any] = [None] * nprocs
    stats_rows = []
    for rank in sorted(done):
        vblob, evblob, stats = done[rank]
        if rank not in failures:
            results[rank] = pickle.loads(vblob)
        if tracker is not None:
            tracker.extend(pickle.loads(evblob))
        stats_rows.append(stats)

    if isinstance(world_info, dict):
        world_info.update({
            "world": "processes",
            "transport": transport,
            "ranks_reporting": len(stats_rows),
            "shm_segments": sum(s["shm_segments"] for s in stats_rows),
            "shm_bytes": sum(s["shm_bytes"] for s in stats_rows),
            "naive_msgs": sum(s["naive_msgs"] for s in stats_rows),
            "naive_bytes": sum(s["naive_bytes"] for s in stats_rows),
            "swept_segments": swept,
        })

    if failures:
        genuine = {
            r: e for r, e in failures.items() if not isinstance(e, CommError)
        }
        raise SpmdError(genuine or failures)
    return results
