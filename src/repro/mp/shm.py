"""Shared-memory segments with refcounted ownership handoff.

One segment per message: every qualifying ndarray buffer in a payload is
packed (64-byte aligned) into a single
:class:`multiprocessing.shared_memory.SharedMemory` block, and the wire
carries only the segment name plus per-buffer offsets.  Receivers map
the block and build zero-copy, read-only array views; the received bytes
are charged once, to the receiver's ledger ``recv_buffer`` category, at
the normal delivery chokepoint (:meth:`SimComm._deliver`) — never on the
sender.

Ownership discipline (SpComm3D-style explicit handoff):

* single-receiver message — ownership transfers with the message: the
  receiver unlinks the name immediately after attaching (POSIX keeps
  the mapping alive until the views die), so no rendezvous with the
  creator is needed;
* multi-receiver message (a broadcast fan-out, a collective result) —
  the creator keeps the name and a refcount of outstanding receivers;
  each receiver posts a tiny ack after attaching and the creator
  unlinks when the count drains (:meth:`SegmentRegistry.ack`).

Python 3.11 registers *every* attach with the (fork-shared) resource
tracker under the same name, so exactly one ``unlink()`` balances the
books.  A crashed worker leaves its names behind; the parent engine's
:func:`sweep_segments` backstop removes anything bearing the run prefix
after all workers have been joined.
"""

from __future__ import annotations

import os
import weakref
from multiprocessing import resource_tracker, shared_memory

#: byte alignment of each packed buffer inside a segment.
ALIGN = 64

#: where POSIX shared memory surfaces as files (the leak-check location).
SHM_DIR = "/dev/shm"


def _untrack(name: str) -> None:
    """Best-effort resource-tracker unregistration by segment name."""
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


class _Adopted:
    """A segment attached on the receive side, kept alive by refcount.

    ``refs`` counts the decoded arrays still viewing the mapping; each
    carries a :func:`weakref.finalize` that releases one reference, and
    the registry closes the local handle when the last view dies.
    """

    __slots__ = ("shm", "refs")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.refs = 0


class SegmentRegistry:
    """Per-process bookkeeping of created and adopted segments.

    ``run_id`` prefixes every segment name, so one run's segments are
    sweepable as a unit; ``rank`` disambiguates creators.  ``post`` is
    the world's enqueue function (used here only indirectly — transports
    post the acks; the registry just counts them).
    """

    def __init__(self, run_id: str, rank: int) -> None:
        self.run_id = run_id
        self.rank = int(rank)
        self._counter = 0
        #: created, not yet sent (error-path cleanup unlinks these).
        self._fresh: dict[str, shared_memory.SharedMemory] = {}
        #: sent to multiple receivers; name -> (handle, outstanding acks).
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self.pending: dict[str, int] = {}
        #: attached on receive; name -> _Adopted.
        self.adopted: dict[str, _Adopted] = {}
        #: handles whose close() was refused because a buffer export was
        #: still live — typically the *dying* view whose finalizer asked
        #: for the close (finalizers run before the view's dealloc
        #: releases its export).  Retried by :meth:`reap`.
        self._zombies: list[shared_memory.SharedMemory] = []
        self.shm_bytes = 0
        self.segments = 0

    def _try_close(self, shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except BufferError:
            self._zombies.append(shm)

    def reap(self) -> None:
        """Retry closing handles a live buffer export blocked earlier."""
        if not self._zombies:
            return
        still: list[shared_memory.SharedMemory] = []
        for shm in self._zombies:
            try:
                shm.close()
            except BufferError:
                still.append(shm)
        self._zombies = still

    # -------------------------------------------------------------- #
    # create side
    # -------------------------------------------------------------- #

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        self.reap()
        name = f"{self.run_id}.{self.rank}.{self._counter}"
        self._counter += 1
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(nbytes), 1)
        )
        self._fresh[shm.name] = shm
        self.shm_bytes += int(nbytes)
        self.segments += 1
        return shm

    def sent(self, name: str, receivers: int) -> None:
        """The segment's message was enqueued to ``receivers`` ranks."""
        shm = self._fresh.pop(name)
        if receivers > 1:
            # ack mode: keep the name until every receiver attached
            self._owned[name] = shm
            self.pending[name] = int(receivers)
        else:
            # ownership transferred: the receiver unlinks after attach
            shm.close()

    def ack(self, names) -> None:
        """Process receiver acks; unlink when a refcount drains."""
        for name in names:
            left = self.pending.get(name)
            if left is None:
                continue
            if left <= 1:
                del self.pending[name]
                shm = self._owned.pop(name)
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                self._try_close(shm)
            else:
                self.pending[name] = left - 1

    # -------------------------------------------------------------- #
    # receive side
    # -------------------------------------------------------------- #

    def adopt(self, name: str, owned: bool) -> _Adopted:
        """Attach a received segment; unlink immediately when ``owned``
        (single-receiver handoff — the mapping outlives the name)."""
        self.reap()
        rec = self.adopted.get(name)
        if rec is not None:
            return rec
        shm = shared_memory.SharedMemory(name=name)
        if owned:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        rec = _Adopted(shm)
        self.adopted[name] = rec
        return rec

    def view(self, rec_name: str, array):
        """Register one decoded array view of an adopted segment."""
        rec = self.adopted[rec_name]
        rec.refs += 1
        weakref.finalize(array, self.release, rec_name)

    def release(self, name: str) -> None:
        rec = self.adopted.get(name)
        if rec is None:
            return
        rec.refs -= 1
        if rec.refs <= 0:
            del self.adopted[name]
            # usually refused here — the finalizer that got us called
            # belongs to a view that hasn't released its export yet —
            # and completed by the next reap()
            self._try_close(rec.shm)

    # -------------------------------------------------------------- #
    # teardown
    # -------------------------------------------------------------- #

    def outstanding(self) -> int:
        """Messages whose receivers have not acked yet."""
        return len(self.pending)

    def abandon(self) -> None:
        """Error-path cleanup: unlink whatever this process still owns.
        Adopted mappings are left to process exit (views may be live);
        the parent sweep removes any name a peer never released."""
        for store in (self._fresh, self._owned):
            for name, shm in list(store.items()):
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                self._try_close(shm)
            store.clear()
        self.pending.clear()


def sweep_segments(run_id: str) -> int:
    """Parent-side backstop: remove every leftover segment of one run.

    Runs after all workers are joined, so nothing can still attach.
    Returns the number of names removed — 0 on a clean run.
    """
    if not os.path.isdir(SHM_DIR):
        return 0
    removed = 0
    for fname in os.listdir(SHM_DIR):
        if not fname.startswith(run_id):
            continue
        try:
            os.unlink(os.path.join(SHM_DIR, fname))
        except OSError:
            continue
        _untrack(fname)
        removed += 1
    return removed


def leaked_segments(run_id: str) -> list[str]:
    """Names under :data:`SHM_DIR` still bearing ``run_id`` (tests)."""
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(f for f in os.listdir(SHM_DIR) if f.startswith(run_id))
