"""Shared-memory segments with refcounted ownership handoff.

One segment per message: every qualifying ndarray buffer in a payload is
packed (64-byte aligned) into a single
:class:`multiprocessing.shared_memory.SharedMemory` block, and the wire
carries only the segment name plus per-buffer offsets.  Receivers map
the block and build zero-copy, read-only array views; the received bytes
are charged once, to the receiver's ledger ``recv_buffer`` category, at
the normal delivery chokepoint (:meth:`SimComm._deliver`) — never on the
sender.

Ownership discipline (SpComm3D-style explicit handoff):

* single-receiver message — ownership transfers with the message: the
  receiver unlinks the name immediately after attaching (POSIX keeps
  the mapping alive until the views die), so no rendezvous with the
  creator is needed;
* multi-receiver message (a broadcast fan-out, a collective result) —
  the creator keeps the name and a refcount of outstanding receivers;
  each receiver posts a tiny ack after attaching and the creator
  unlinks when the count drains (:meth:`SegmentRegistry.ack`).

Python 3.11 registers *every* attach with the (fork-shared) resource
tracker under the same name, so exactly one ``unlink()`` balances the
books.  A crashed worker leaves its names behind; the parent engine's
:func:`sweep_segments` backstop removes anything bearing the run prefix
after all workers have been joined.

Under healing the registry is also the epoch reaper: a revoked epoch's
unreceived segments would otherwise outlive the survivors (the creator
closed its handle on single-receiver handoff; the receiver that was
supposed to unlink is dead or has abandoned the op).  When healing is
on, single-receiver handoffs are remembered in ``_transferred`` and
:meth:`SegmentRegistry.epoch_reset` reaps them — together with every
still-owned segment — when a survivor adopts a new
:class:`~repro.simmpi.membership.HealDecision`.  The parent additionally
sweeps the *dead* rank's names (rank-filtered :func:`sweep_segments`)
after all survivors have voted and before it publishes the decision, so
no survivor can attach a name the parent is unlinking.  Adopted
mappings are never reaped: POSIX keeps an unlinked mapping alive until
the last view dies, so in-flight zero-copy receive views held by
survivors stay valid across a heal.
"""

from __future__ import annotations

import os
import weakref
from multiprocessing import resource_tracker, shared_memory

#: byte alignment of each packed buffer inside a segment.
ALIGN = 64

#: where POSIX shared memory surfaces as files (the leak-check location).
SHM_DIR = "/dev/shm"


def _untrack(name: str) -> None:
    """Best-effort resource-tracker unregistration by segment name."""
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


class _Adopted:
    """A segment attached on the receive side, kept alive by refcount.

    ``refs`` counts the decoded arrays still viewing the mapping; each
    carries a :func:`weakref.finalize` that releases one reference, and
    the registry closes the local handle when the last view dies.
    """

    __slots__ = ("shm", "refs")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.refs = 0


class SegmentRegistry:
    """Per-process bookkeeping of created and adopted segments.

    ``run_id`` prefixes every segment name, so one run's segments are
    sweepable as a unit; ``rank`` disambiguates creators.  ``post`` is
    the world's enqueue function (used here only indirectly — transports
    post the acks; the registry just counts them).
    """

    def __init__(self, run_id: str, rank: int) -> None:
        self.run_id = run_id
        self.rank = int(rank)
        self._counter = 0
        #: created, not yet sent (error-path cleanup unlinks these).
        self._fresh: dict[str, shared_memory.SharedMemory] = {}
        #: sent to multiple receivers; name -> (handle, outstanding acks).
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self.pending: dict[str, int] = {}
        #: attached on receive; name -> _Adopted.
        self.adopted: dict[str, _Adopted] = {}
        #: healing only: single-receiver names whose ownership left with
        #: the message.  On a clean run every one is unlinked by its
        #: receiver; on a revoked epoch the receiver may be dead, so
        #: :meth:`epoch_reset` reaps whatever of these still exists.
        self.track_transfers = False
        self._transferred: set[str] = set()
        #: handles whose close() was refused because a buffer export was
        #: still live — typically the *dying* view whose finalizer asked
        #: for the close (finalizers run before the view's dealloc
        #: releases its export).  Retried by :meth:`reap`.
        self._zombies: list[shared_memory.SharedMemory] = []
        self.shm_bytes = 0
        self.segments = 0

    def _try_close(self, shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except BufferError:
            self._zombies.append(shm)

    def reap(self) -> None:
        """Retry closing handles a live buffer export blocked earlier."""
        if not self._zombies:
            return
        still: list[shared_memory.SharedMemory] = []
        for shm in self._zombies:
            try:
                shm.close()
            except BufferError:
                still.append(shm)
        self._zombies = still

    # -------------------------------------------------------------- #
    # create side
    # -------------------------------------------------------------- #

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        self.reap()
        name = f"{self.run_id}.{self.rank}.{self._counter}"
        self._counter += 1
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(nbytes), 1)
        )
        self._fresh[shm.name] = shm
        self.shm_bytes += int(nbytes)
        self.segments += 1
        return shm

    def sent(self, name: str, receivers: int) -> None:
        """The segment's message was enqueued to ``receivers`` ranks."""
        shm = self._fresh.pop(name)
        if receivers > 1:
            # ack mode: keep the name until every receiver attached
            self._owned[name] = shm
            self.pending[name] = int(receivers)
        else:
            # ownership transferred: the receiver unlinks after attach
            shm.close()
            if self.track_transfers:
                self._transferred.add(name)

    def ack(self, names) -> None:
        """Process receiver acks; unlink when a refcount drains."""
        for name in names:
            left = self.pending.get(name)
            if left is None:
                continue
            if left <= 1:
                del self.pending[name]
                shm = self._owned.pop(name)
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                self._try_close(shm)
            else:
                self.pending[name] = left - 1

    # -------------------------------------------------------------- #
    # receive side
    # -------------------------------------------------------------- #

    def adopt(self, name: str, owned: bool) -> _Adopted:
        """Attach a received segment; unlink immediately when ``owned``
        (single-receiver handoff — the mapping outlives the name)."""
        self.reap()
        rec = self.adopted.get(name)
        if rec is not None:
            return rec
        shm = shared_memory.SharedMemory(name=name)
        if owned:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        rec = _Adopted(shm)
        self.adopted[name] = rec
        return rec

    def view(self, rec_name: str, array):
        """Register one decoded array view of an adopted segment."""
        rec = self.adopted[rec_name]
        rec.refs += 1
        weakref.finalize(array, self.release, rec_name)

    def release(self, name: str) -> None:
        rec = self.adopted.get(name)
        if rec is None:
            return
        rec.refs -= 1
        if rec.refs <= 0:
            del self.adopted[name]
            # usually refused here — the finalizer that got us called
            # belongs to a view that hasn't released its export yet —
            # and completed by the next reap()
            self._try_close(rec.shm)

    # -------------------------------------------------------------- #
    # teardown
    # -------------------------------------------------------------- #

    def outstanding(self) -> int:
        """Messages whose receivers have not acked yet."""
        return len(self.pending)

    def epoch_reset(self) -> int:
        """Heal-epoch hygiene: reap every segment this process still
        owns plus every single-receiver handoff whose receiver may have
        died mid-adopt.  Called by a survivor adopting a heal decision;
        everything this touches belongs to the revoked epoch — the new
        epoch has not created segments yet.  Adopted mappings are kept
        (live views must survive the heal).  Returns names reaped."""
        reaped = 0
        for store in (self._fresh, self._owned):
            for _name, shm in list(store.items()):
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                self._try_close(shm)
                reaped += 1
            store.clear()
        self.pending.clear()
        for name in self._transferred:
            if reap_segment(name):
                reaped += 1
        self._transferred.clear()
        return reaped

    def abandon(self) -> None:
        """Error-path cleanup: unlink whatever this process still owns.
        Adopted mappings are left to process exit (views may be live);
        the parent sweep removes any name a peer never released."""
        for store in (self._fresh, self._owned):
            for name, shm in list(store.items()):
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                self._try_close(shm)
            store.clear()
        self.pending.clear()


def reap_segment(name: str) -> bool:
    """Unlink one segment by name, in-process and tracker-balanced.

    Used for stale-epoch wires a survivor drops without decoding: the
    attach registers with the resource tracker and the unlink
    unregisters, so the books stay balanced.  Returns ``True`` when the
    name existed (racing with another reaper is fine)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:
        # lost the race after attaching: balance the attach registration
        _untrack(name)
    shm.close()
    return True


def sweep_segments(run_id: str, rank: int | None = None) -> int:
    """Parent-side backstop: remove leftover segments of one run.

    With ``rank=None`` (end of run, all workers joined) every name
    bearing the run prefix goes.  With a ``rank`` this is the heal-time
    reaper for one *dead* worker's creations (``{run_id}.{rank}.…``) —
    safe only once every survivor has voted for the revoke epoch, i.e.
    abandoned the ops that could still attach those names.
    Returns the number of names removed — 0 on a clean run.
    """
    if not os.path.isdir(SHM_DIR):
        return 0
    prefix = run_id if rank is None else f"{run_id}.{int(rank)}."
    removed = 0
    for fname in os.listdir(SHM_DIR):
        if not fname.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(SHM_DIR, fname))
        except OSError:
            continue
        _untrack(fname)
        removed += 1
    return removed


def leaked_segments(run_id: str) -> list[str]:
    """Names under :data:`SHM_DIR` still bearing ``run_id`` (tests)."""
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(f for f in os.listdir(SHM_DIR) if f.startswith(run_id))
