"""Process-backed execution world (``world="processes"``).

One OS process per rank, queues for control traffic, shared-memory
segments for bulk payloads.  The threaded simulator in
:mod:`repro.simmpi` stays the deterministic reference; this package is
the performance world — same :class:`~repro.simmpi.comm.SimComm` API,
bit-identical products, real multicore speedup.
"""

from .bridge import DriverCallback, set_runtime
from .comm import MpComm, MpWorld
from .engine import run_spmd_processes
from .shm import leaked_segments, sweep_segments
from .transport import AUTO_THRESHOLD, TRANSPORTS, get_transport

__all__ = [
    "AUTO_THRESHOLD",
    "TRANSPORTS",
    "DriverCallback",
    "MpComm",
    "MpWorld",
    "get_transport",
    "leaked_segments",
    "run_spmd_processes",
    "set_runtime",
    "sweep_segments",
]
