"""Driver-side callbacks that survive the process boundary.

Drivers like :func:`repro.summa.batched_summa3d` hand the SPMD body
callables that must run *in the driver* — the piece collector's sink,
the checkpoint writer.  Under the threaded world these are ordinary
closures; under the process world a worker cannot call into the parent
directly, so the driver wraps each one in a :class:`DriverCallback`
before launch.  The wrapper is inherited by the forked worker, where
:func:`set_runtime` has installed the worker's :class:`MpWorld`; calling
it there ships the (pickled) arguments up the results queue, and the
parent engine invokes the real function on arrival.

Ordering guarantee: a worker's callback messages and its final
``("done", ...)`` message travel the same queue, so the parent has
executed every callback a rank issued before it accepts that rank's
return value.  Callback *return values* are not shipped back — a
``DriverCallback`` is fire-and-forget from the worker's point of view
(all current driver sinks return ``None``).
"""

from __future__ import annotations

import pickle

#: the current worker's MpWorld; None in the parent / threaded world.
_RUNTIME = None


def set_runtime(rt) -> None:
    """Install (or clear, with ``None``) the calling process's world."""
    global _RUNTIME
    _RUNTIME = rt


class DriverCallback:
    """Wrap a driver-side callable so SPMD bodies can call it anywhere.

    In the parent (or the threaded world) it is a transparent
    pass-through.  Inside a worker process it pickles the arguments
    eagerly — surfacing unpicklable-argument errors at the call site,
    not in a queue feeder thread — and posts them to the parent.
    """

    __slots__ = ("fn", "index")

    def __init__(self, fn) -> None:
        self.fn = fn
        #: assigned by the engine's pre-launch scan.
        self.index: int | None = None

    def __call__(self, *args):
        rt = _RUNTIME
        if rt is None:
            return self.fn(*args)
        rt.post_callback(self.index, pickle.dumps(args))
        return None
