"""Process-backed communicator: :class:`MpComm` and its per-worker world.

:class:`MpComm` subclasses :class:`~repro.simmpi.comm.SimComm` and keeps
its public API, metering formulas and delivery chokepoint byte-for-byte;
only the rendezvous machinery changes.  Where the threaded world meets
under a condition variable, the process world routes messages through
per-rank queues:

* generic collectives (:meth:`SimComm._exchange` — barrier, allgather,
  allreduce, gather, scatter, reduce, split) relay through the
  communicator's local rank 0, which assembles the contribution dict
  and fans it back out; rank 0 is the (single) metering rank, preserving
  the "exactly one rank records per collective" invariant;
* ``bcast`` fans out directly from the root (recorded at the root with
  the same ``nbytes * (size - 1)`` formula);
* ``alltoall`` / ``alltoallv`` send personalised payloads directly
  point-to-point; a tiny unmetered size-row gather lets local rank 0
  record the event with exactly the threaded world's max/sum figures;
* point-to-point messages travel per-(communicator, source) channels in
  send (seq) order, and tag matching takes the earliest match — MPI's
  non-overtaking rule, same as the threaded ``_match``.

Every payload crosses via the world's transport (see
:mod:`repro.mp.transport`); ledger charging still happens only in the
inherited :meth:`SimComm._deliver`, so a zero-copy receive is charged
once, to the receiver's ``recv_buffer``.

The hang watchdog is a per-rank deadline: a blocked wait that exceeds
the world timeout marks the shared failure event and raises a
:class:`~repro.errors.HangError` (kind ``"timeout"``) whose dump names
this stuck process's PID; there is no cross-process wait-for graph, so
deadlock-cycle classification stays a threads-world feature.
"""

from __future__ import annotations

import os
import queue as _queue
import time

from ..errors import CommError, HangError
from ..simmpi.comm import SimComm, _normalize_alltoallv
from ..simmpi.serialization import payload_nbytes
from ..simmpi.tracker import CommTracker
from .shm import SegmentRegistry
from .transport import get_transport

_NOTHING = object()


class MpWorld:
    """One worker process's view of the run: queues, buffers, transport.

    Exposes the attribute surface :class:`SimComm` and the layers above
    it read from a world — ``tracker``, ``timeout``, ``checksums``,
    ``injector`` (always ``None`` here; fault injection is
    thread-world-only), ``membership``/``revoke_epoch`` (no heal layer),
    ``failed`` (the shared abort event), ``step_label`` /
    ``backend_label`` / ``ledger`` (plain attributes — one thread per
    process, so no TLS needed) and ``heartbeat``.
    """

    def __init__(self, rank: int, nprocs: int, inboxes, failed, *,
                 timeout: float, checksums: bool, transport: str,
                 run_id: str) -> None:
        self.rank = int(rank)
        self.nprocs = int(nprocs)
        self.inboxes = inboxes
        self.inbox = inboxes[rank]
        self.failed = failed
        self.tracker = CommTracker()
        self.timeout = float(timeout)
        self.checksums = bool(checksums)
        self.injector = None
        self.membership = None
        self.revoke_epoch = 0
        self.step_label = ""
        self.backend_label = ""
        self.ledger = None
        self.run_id = run_id
        registry = SegmentRegistry(run_id, rank)
        self.transport = get_transport(transport)(
            registry, post_ack=self._post_ack
        )
        #: parent result queue; installed by the worker main for the
        #: driver-callback bridge.
        self.results = None
        self._tick = max(0.005, min(0.2, self.timeout / 50.0))
        self._heartbeats: dict[int, int] = {}
        # demux buffers
        self._msgs: dict[tuple, object] = {}
        self._multi: dict[tuple, dict] = {}
        self._p2p: dict[tuple, list] = {}
        self._seq: dict[tuple, int] = {}

    # -------------------------------------------------------------- #
    # plumbing shared with the threaded World's attribute surface
    # -------------------------------------------------------------- #

    def heartbeat(self, global_rank: int) -> int:
        beat = self._heartbeats.get(global_rank, 0) + 1
        self._heartbeats[global_rank] = beat
        return beat

    def post_callback(self, index: int, args_blob: bytes) -> None:
        """Ship a :class:`~repro.mp.bridge.DriverCallback` invocation to
        the parent (pre-pickled argument tuple)."""
        self.results.put(("cb", self.rank, index, args_blob))

    # -------------------------------------------------------------- #
    # message plumbing
    # -------------------------------------------------------------- #

    def post(self, dest_global: int, item) -> None:
        self.inboxes[dest_global].put(item)

    def _post_ack(self, creator_global: int, name: str) -> None:
        self.post(creator_global, ("ack", (name,)))

    def next_seq(self, comm_id: tuple, dest_global: int) -> int:
        key = (comm_id, dest_global)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def _demux(self, item) -> None:
        kind = item[0]
        if kind in ("c", "a", "m"):
            _, comm_id, op_id, src, body = item
            self._multi.setdefault((comm_id, kind, op_id), {})[src] = body
        elif kind in ("r", "b"):
            _, comm_id, op_id, body = item
            self._msgs[(comm_id, kind, op_id)] = body
        elif kind == "p":
            _, comm_id, src_g, seq, tag, body = item
            self._p2p.setdefault((comm_id, src_g), []).append(
                (seq, tag, body)
            )
        elif kind == "ack":
            self.transport.segments.ack(item[1])
        else:
            raise CommError(f"rank {self.rank}: unknown wire item {kind!r}")

    def drain(self) -> None:
        """Process everything currently queued, without blocking."""
        while True:
            try:
                item = self.inbox.get_nowait()
            except _queue.Empty:
                return
            self._demux(item)

    def _wait(self, ready, *, comm, op: str, tag=None, peers=()):
        """Pump the inbox until ``ready()`` returns something.

        ``ready`` returns :data:`_NOTHING` while unsatisfied.  Respects
        the shared abort event (raising :class:`CommError`, the cascade
        error the engine filters) and the flat per-rank timeout backstop
        (raising a PID-naming :class:`HangError`).
        """
        hit = ready()
        if hit is not _NOTHING:
            return hit
        deadline = time.monotonic() + self.timeout
        while True:
            if self.failed.is_set():
                raise CommError(f"{op} aborted: a peer rank failed")
            try:
                item = self.inbox.get(timeout=self._tick)
            except _queue.Empty:
                item = None
            if item is not None:
                self._demux(item)
                hit = ready()
                if hit is not _NOTHING:
                    return hit
                continue
            if time.monotonic() >= deadline:
                self.failed.set()
                raise self._hang(comm, op, tag=tag, peers=peers)

    def _hang(self, comm, op: str, *, tag, peers) -> HangError:
        me = self.rank
        pid = os.getpid()
        pending = sorted(set(int(p) for p in peers))
        record = {
            "rank": me,
            "pid": pid,
            "op": op,
            "comm": str(comm.comm_id),
            "tag": tag,
            "op_id": None,
            "pending": pending,
            "blocked_s": round(self.timeout, 3),
            "heartbeat": self._heartbeats.get(me, 0),
        }
        message = (
            f"rank {me} (worker process pid {pid}): {op} on "
            f"{comm.comm_id} timed out after {self.timeout:g}s waiting "
            f"on rank(s) {', '.join(str(p) for p in pending) or '?'}"
            "\n  (process world: per-rank deadline watchdog; no "
            "cross-rank wait-for graph)"
            f"\n  rank {me}: {op} on {comm.comm_id}"
            + (f" tag {tag}" if tag is not None else "")
            + f" waiting on {pending} for {round(self.timeout, 3)}s "
            f"in pid {pid}"
        )
        return HangError(
            message, kind="timeout", cycle=(), dump={me: record}
        ).with_context(
            rank=me, pid=pid, op=op, peers=pending, tag=tag,
            comm=str(comm.comm_id),
        )

    # wait helpers used by MpComm ---------------------------------- #

    def wait_msg(self, key: tuple, *, comm, op: str, peers=()):
        def ready():
            return self._msgs.pop(key, _NOTHING)

        return self._wait(ready, comm=comm, op=op, peers=peers)

    def wait_multi(self, key: tuple, need: int, *, comm, op: str, peers=()):
        def ready():
            got = self._multi.get(key)
            if got is not None and len(got) >= need:
                return self._multi.pop(key)
            return _NOTHING

        return self._wait(ready, comm=comm, op=op, peers=peers)

    def match_p2p(self, channel: tuple, tag: int):
        """Pop the earliest buffered message on ``channel`` bearing
        ``tag`` (arrival order == send order: one queue per producer)."""
        entries = self._p2p.get(channel)
        if not entries:
            return _NOTHING
        for i, (_seq, mtag, body) in enumerate(entries):
            if mtag == tag:
                entries.pop(i)
                return body
        return _NOTHING

    def wait_p2p(self, channel: tuple, tag: int, *, comm, op: str, peers=()):
        def ready():
            return self.match_p2p(channel, tag)

        return self._wait(ready, comm=comm, op=op, tag=tag, peers=peers)

    # -------------------------------------------------------------- #
    # teardown
    # -------------------------------------------------------------- #

    def finish(self) -> None:
        """Drain outstanding segment acks, then close adopted handles.

        Runs after the SPMD body returned: every message this rank sent
        was matched, so each receiver will attach (and ack) as it drains
        its own queue — the wait below ends as soon as the slowest
        consumer of our broadcasts catches up.
        """
        registry = self.transport.segments
        deadline = time.monotonic() + self.timeout
        while registry.outstanding():
            try:
                item = self.inbox.get(timeout=self._tick)
            except _queue.Empty:
                item = None
            if item is not None:
                self._demux(item)
                continue
            if self.failed.is_set() or time.monotonic() >= deadline:
                registry.abandon()
                break
        for name in list(registry.adopted):
            registry.release(name)

    def abandon(self) -> None:
        self.transport.segments.abandon()


class MpComm(SimComm):
    """One process rank's communicator — API-compatible with SimComm.

    ``world`` is an :class:`MpWorld`.  All inherited operations that go
    through :meth:`_exchange`, :meth:`send`/:meth:`recv` or
    :meth:`_try_recv` (barrier, allgather, allreduce, gather, scatter,
    reduce, split, dup, isend, irecv, ibcast, step/backend scopes,
    envelope checksums, ledger charging) work unmodified on top of the
    overrides below.
    """

    __slots__ = ()

    # ------------------------------------------------------------------ #
    # the rendezvous primitive, re-based on queues
    # ------------------------------------------------------------------ #

    def _exchange(self, payload, op: str = "collective"):
        """Relay through local rank 0; completion is metered there."""
        op_id = self._opseq
        self._opseq += 1
        rt: MpWorld = self.world
        if self.rank == 0:
            contrib = {0: payload}
            if self.size > 1:
                wires = rt.wait_multi(
                    (self.comm_id, "c", op_id), self.size - 1,
                    comm=self, op=op,
                    peers=(m for m in self.members if m != self.global_rank),
                )
                for src, wire in wires.items():
                    contrib[src] = rt.transport.decode(wire)
                wire_all = rt.transport.encode(contrib, receivers=self.size - 1)
                for dst in range(1, self.size):
                    rt.post(
                        self.members[dst],
                        ("r", self.comm_id, op_id, wire_all),
                    )
            return contrib, True
        rt.post(
            self.members[0],
            ("c", self.comm_id, op_id, self.rank,
             rt.transport.encode(payload, receivers=1)),
        )
        wire = rt.wait_msg(
            (self.comm_id, "r", op_id), comm=self, op=op,
            peers=(self.members[0],),
        )
        return rt.transport.decode(wire), False

    # ------------------------------------------------------------------ #
    # direct collectives (data goes point-to-point, not via the relay)
    # ------------------------------------------------------------------ #

    def bcast(self, obj, root: int = 0):
        self._check_root(root)
        self._inject("bcast")
        op_id = self._opseq
        self._opseq += 1
        rt: MpWorld = self.world
        if self.rank == root:
            payload = self._wrap(obj)
            nbytes = payload_nbytes(payload)
            if self.size > 1:
                wire = rt.transport.encode(payload, receivers=self.size - 1)
                for dst in range(self.size):
                    if dst != root:
                        rt.post(
                            self.members[dst],
                            ("b", self.comm_id, op_id, wire),
                        )
            self._record("bcast", nbytes, nbytes * max(self.size - 1, 0))
            return obj
        wire = rt.wait_msg(
            (self.comm_id, "b", op_id), comm=self, op="bcast",
            peers=(self.members[root],),
        )
        return self._deliver(rt.transport.decode(wire), "bcast")

    def alltoall(self, sendlist) -> list:
        sendlist = list(sendlist)
        if len(sendlist) != self.size:
            raise CommError(
                f"alltoall needs {self.size} payloads, got {len(sendlist)}"
            )
        return self._direct_alltoall(sendlist, "alltoall")

    def alltoallv(self, sendlist, counts=None) -> list:
        sendlist = _normalize_alltoallv(sendlist, counts, self.size)
        return self._direct_alltoall(sendlist, "alltoallv")

    def _direct_alltoall(self, sendlist, op: str) -> list:
        self._inject(op)
        op_id = self._opseq
        self._opseq += 1
        rt: MpWorld = self.world
        wrapped = [self._wrap(x) for x in sendlist]
        sizes = [payload_nbytes(x) for x in wrapped]
        for dst in range(self.size):
            if dst != self.rank:
                rt.post(
                    self.members[dst],
                    ("a", self.comm_id, op_id, self.rank,
                     rt.transport.encode(wrapped[dst], receivers=1)),
                )
        # metering: local rank 0 gathers every rank's send-size row
        # (unmetered metadata) and records the event with the threaded
        # world's exact per-rank max/sum figures.
        if self.rank == 0:
            rows = {0: sizes}
            if self.size > 1:
                rows.update(rt.wait_multi(
                    (self.comm_id, "m", op_id), self.size - 1,
                    comm=self, op=op,
                    peers=(m for m in self.members if m != self.global_rank),
                ))
            per_rank = [sum(rows[r]) for r in range(self.size)]
            self._record(op, max(per_rank, default=0), sum(per_rank))
        else:
            rt.post(
                self.members[0],
                ("m", self.comm_id, op_id, self.rank, sizes),
            )
        out: list = [None] * self.size
        out[self.rank] = self._deliver(wrapped[self.rank], op)
        return self._collect_a2a(out, op_id, op)

    def _collect_a2a(self, out: list, op_id: int, op: str) -> list:
        """Receive the personalised payloads, in source-rank order."""
        rt: MpWorld = self.world
        key = (self.comm_id, "a", op_id)

        for src in range(self.size):
            if src == self.rank:
                continue

            def ready(src=src):
                got = rt._multi.get(key)
                if got is not None and src in got:
                    return got.pop(src)
                return _NOTHING

            wire = rt._wait(
                ready, comm=self, op=op, peers=(self.members[src],)
            )
            out[src] = self._deliver(rt.transport.decode(wire), op)
        got = rt._multi.get(key)
        if got is not None and not got:
            del rt._multi[key]
        return out

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._check_root(dest, "dest")
        self._inject("send")
        payload = self._wrap(obj)
        rt: MpWorld = self.world
        dest_g = self.members[dest]
        seq = rt.next_seq(self.comm_id, dest_g)
        rt.post(
            dest_g,
            ("p", self.comm_id, self.global_rank, seq, int(tag),
             rt.transport.encode(payload, receivers=1)),
        )
        self._record("send", payload_nbytes(payload), comm_size=2)

    def recv(self, source: int, tag: int = 0):
        self._check_root(source, "source")
        self._inject("recv")
        rt: MpWorld = self.world
        src_g = self.members[source]
        wire = rt.wait_p2p(
            (self.comm_id, src_g), int(tag), comm=self, op="recv",
            peers=(src_g,),
        )
        return self._deliver(rt.transport.decode(wire), "recv")

    def _try_recv(self, source: int, tag: int):
        self._check_root(source, "source")
        rt: MpWorld = self.world
        rt.drain()
        body = rt.match_p2p((self.comm_id, self.members[source]), int(tag))
        if body is _NOTHING:
            return False, None
        return True, self._deliver(rt.transport.decode(body), "recv")
