"""Process-backed communicator: :class:`MpComm` and its per-worker world.

:class:`MpComm` subclasses :class:`~repro.simmpi.comm.SimComm` and keeps
its public API, metering formulas and delivery chokepoint byte-for-byte;
only the rendezvous machinery changes.  Where the threaded world meets
under a condition variable, the process world routes messages through
per-rank queues:

* generic collectives (:meth:`SimComm._exchange` — barrier, allgather,
  allreduce, gather, scatter, reduce, split) relay through the
  communicator's local rank 0, which assembles the contribution dict
  and fans it back out; rank 0 is the (single) metering rank, preserving
  the "exactly one rank records per collective" invariant;
* ``bcast`` fans out directly from the root (recorded at the root with
  the same ``nbytes * (size - 1)`` formula);
* ``alltoall`` / ``alltoallv`` send personalised payloads directly
  point-to-point; a tiny unmetered size-row gather lets local rank 0
  record the event with exactly the threaded world's max/sum figures;
* point-to-point messages travel per-(communicator, source) channels in
  send (seq) order, and tag matching takes the earliest match — MPI's
  non-overtaking rule, same as the threaded ``_match``.

Every payload crosses via the world's transport (see
:mod:`repro.mp.transport`); ledger charging still happens only in the
inherited :meth:`SimComm._deliver`, so a zero-copy receive is charged
once, to the receiver's ``recv_buffer``.

Hang classification is two-tier.  A blocked wait first ships its wait
record (op, pending peers, PID) to the parent after a short grace
period; the parent's cross-process watchdog assembles the wait-for
graph, confirms a cycle over two sweeps, and notifies one member with a
``("ctl", "hang", ...)`` item — the notified worker raises the
classified :class:`~repro.errors.HangError` (kind ``"deadlock"`` or
``"peer-exited"``) exactly as the threaded watchdog would.  The flat
per-rank deadline stays as the backstop (kind ``"timeout"``, dump
naming this stuck process's PID) for hangs the graph cannot prove.

Healing (ULFM revoke → agree → repair) works here too: the parent
converts a worker's real death into an epoch revocation shipped as
``("ctl", "revoke", epoch)``; blocked waits observe it and raise
:class:`~repro.errors.RankRevokedError`; :class:`MpMembership` votes
through the results queue and adopts the parent-computed
:class:`~repro.simmpi.membership.HealDecision`, resetting stale-epoch
buffers and shared-memory segments on the way (:meth:`MpWorld.epoch_reset`).
"""

from __future__ import annotations

import os
import queue as _queue
import time

from ..errors import CommError, HangError, HealError
from ..simmpi.comm import SimComm, _normalize_alltoallv
from ..simmpi.membership import HealDecision, comm_epoch
from ..simmpi.serialization import payload_nbytes
from ..simmpi.tracker import CommTracker
from .shm import SegmentRegistry
from .transport import get_transport, reap_wire

_NOTHING = object()


class MpWorld:
    """One worker process's view of the run: queues, buffers, transport.

    Exposes the attribute surface :class:`SimComm` and the layers above
    it read from a world — ``tracker``, ``timeout``, ``checksums``,
    ``injector`` (the fork-inherited :class:`FaultInjector`, or
    ``None``), ``membership`` (an :class:`MpMembership` when healing) /
    ``revoke_epoch``, ``failed`` (the shared abort event),
    ``step_label`` / ``backend_label`` / ``ledger`` (plain attributes —
    one thread per process, so no TLS needed) and ``heartbeat``.
    """

    #: the communicator class :func:`~repro.simmpi.membership.epoch_comm`
    #: builds on this world (assigned below, after MpComm is defined).
    comm_class: type | None = None

    #: retries in this world really sleep — see
    #: :meth:`repro.resilience.retry.RetryPolicy.call`.
    real_backoff = True

    def __init__(self, rank: int, nprocs: int, inboxes, failed, *,
                 timeout: float, checksums: bool, transport: str,
                 run_id: str) -> None:
        self.rank = int(rank)
        self.nprocs = int(nprocs)
        self.inboxes = inboxes
        self.inbox = inboxes[rank]
        self.failed = failed
        self.tracker = CommTracker()
        self.timeout = float(timeout)
        self.checksums = bool(checksums)
        self.injector = None
        self.membership = None
        self.revoke_epoch = 0
        self.step_label = ""
        self.backend_label = ""
        self.ledger = None
        self.run_id = run_id
        registry = SegmentRegistry(run_id, rank)
        self.transport = get_transport(transport)(
            registry, post_ack=self._post_ack
        )
        #: parent result queue; installed by the worker main for the
        #: driver-callback bridge, votes, heal meters and wait records.
        self.results = None
        #: proxy shipping heal meters to the driver's HealContext.
        self.heal_proxy = None
        #: latest heal decision epoch this worker adopted; older wires
        #: and buffers are stale and get reaped, not decoded.
        self.adopted_epoch = 0
        #: set by a ``("ctl", "finish")`` item (parks spares off).
        self.finish_flag = False
        #: classified hang shipped by the parent watchdog, if any.
        self._hang_notice = None
        self._tick = max(0.005, min(0.2, self.timeout / 50.0))
        #: how long a wait blocks before shipping its record to the
        #: parent watchdog (short enough to classify well before the
        #: flat deadline, long enough to skip the fast path entirely).
        self._watch_grace = max(0.05, min(1.0, self.timeout / 20.0))
        self._heartbeats: dict[int, int] = {}
        # demux buffers
        self._msgs: dict[tuple, object] = {}
        self._multi: dict[tuple, dict] = {}
        self._p2p: dict[tuple, list] = {}
        self._seq: dict[tuple, int] = {}

    # -------------------------------------------------------------- #
    # plumbing shared with the threaded World's attribute surface
    # -------------------------------------------------------------- #

    def heartbeat(self, global_rank: int) -> int:
        beat = self._heartbeats.get(global_rank, 0) + 1
        self._heartbeats[global_rank] = beat
        return beat

    def post_callback(self, index: int, args_blob: bytes) -> None:
        """Ship a :class:`~repro.mp.bridge.DriverCallback` invocation to
        the parent (pre-pickled argument tuple)."""
        self.results.put(("cb", self.rank, index, args_blob))

    # -------------------------------------------------------------- #
    # message plumbing
    # -------------------------------------------------------------- #

    def post(self, dest_global: int, item) -> None:
        self.inboxes[dest_global].put(item)

    def _post_ack(self, creator_global: int, name: str) -> None:
        self.post(creator_global, ("ack", (name,)))

    def next_seq(self, comm_id: tuple, dest_global: int) -> int:
        key = (comm_id, dest_global)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def _demux(self, item) -> None:
        kind = item[0]
        if kind == "ctl":
            self._handle_ctl(item)
            return
        if kind == "ack":
            self.transport.segments.ack(item[1])
            return
        if self.membership is not None and comm_epoch(item[1]) < self.adopted_epoch:
            # stale wire from a revoked epoch: never decode it, but do
            # remove the segment it may point at — nobody else will.
            reap_wire(item[-1])
            return
        if kind in ("c", "a", "m"):
            _, comm_id, op_id, src, body = item
            self._multi.setdefault((comm_id, kind, op_id), {})[src] = body
        elif kind in ("r", "b"):
            _, comm_id, op_id, body = item
            self._msgs[(comm_id, kind, op_id)] = body
        elif kind == "p":
            _, comm_id, src_g, seq, tag, body = item
            self._p2p.setdefault((comm_id, src_g), []).append(
                (seq, tag, body)
            )
        else:
            raise CommError(f"rank {self.rank}: unknown wire item {kind!r}")

    def _handle_ctl(self, item) -> None:
        """Parent-coordinator control items (healing and watchdog)."""
        what = item[1]
        if what == "revoke":
            epoch = int(item[2])
            if epoch > self.revoke_epoch:
                self.revoke_epoch = epoch
        elif what == "decision":
            if self.membership is not None:
                self.membership.receive(item[2])
        elif what == "hang":
            _, _, kind, cycle, dump, message, target_since = item
            self._hang_notice = (kind, tuple(cycle), dump, message,
                                 target_since)
        elif what == "finish":
            self.finish_flag = True
        else:
            raise CommError(f"rank {self.rank}: unknown ctl item {what!r}")

    def check_hang_notice(self, op: str, since: float | None = None) -> None:
        """Raise the parent watchdog's classified hang, once received.

        The notice is bound to the wait it classified (its ``since``
        stamp): if this rank has already moved on — the awaited data
        raced in just as the peer exited — the notice is stale and is
        dropped; the parent re-arms when it sees the record replaced.
        """
        notice = self._hang_notice
        if notice is None:
            return
        kind, cycle, dump, message, target_since = notice
        if since is None or since != target_since:
            self._hang_notice = None
            return
        self._hang_notice = None
        # the classified rank is the one that aborts the run
        self.failed.set()
        raise HangError(message, kind=kind, cycle=cycle, dump=dump).with_context(
            rank=self.rank, pid=os.getpid(), op=op,
        )

    def drain(self) -> None:
        """Process everything currently queued, without blocking."""
        while True:
            try:
                item = self.inbox.get_nowait()
            except _queue.Empty:
                return
            self._demux(item)

    def epoch_reset(self, epoch: int) -> None:
        """Adopt heal ``epoch``: purge pre-``epoch`` buffers + segments.

        Selective, not wholesale — a fast survivor's new-epoch traffic
        can land in this inbox *before* this rank adopts the decision,
        and must survive the reset.  Each dropped wire's shared-memory
        segment is reaped here (the dead rank cannot, and a dead
        receiver's single-owner handoffs are reaped by the registry's
        own ``epoch_reset``).  Adopted mappings with live views are
        untouched: in-flight zero-copy receives stay valid.
        """
        if epoch <= self.adopted_epoch:
            return
        self.adopted_epoch = epoch
        for key in [k for k in self._msgs if comm_epoch(k[0]) < epoch]:
            reap_wire(self._msgs.pop(key))
        for key in [k for k in self._multi if comm_epoch(k[0]) < epoch]:
            for wire in self._multi.pop(key).values():
                reap_wire(wire)
        for key in [k for k in self._p2p if comm_epoch(k[0]) < epoch]:
            for _seq, _tag, wire in self._p2p.pop(key):
                reap_wire(wire)
        for key in [k for k in self._seq if comm_epoch(k[0]) < epoch]:
            del self._seq[key]
        self.transport.segments.epoch_reset()

    def _wait(self, ready, *, comm, op: str, tag=None, peers=()):
        """Pump the inbox until ``ready()`` returns something.

        ``ready`` returns :data:`_NOTHING` while unsatisfied.  Respects
        the shared abort event (raising :class:`CommError`, the cascade
        error the engine filters), epoch revocation
        (:class:`~repro.errors.RankRevokedError` via the comm, so a
        blocked survivor joins the heal agreement promptly), the parent
        watchdog's classified hang notices, and the flat per-rank
        timeout backstop (raising a PID-naming :class:`HangError`).
        A wait outlasting the grace period ships its record to the
        parent, which runs cross-process deadlock/peer-exited
        classification over all shipped records.
        """
        peers = tuple(int(p) for p in peers)
        hit = ready()
        if hit is not _NOTHING:
            return hit
        if comm is not None:
            comm._check_revoked()
        since = time.monotonic()
        self.check_hang_notice(op, since)
        deadline = since + self.timeout
        watch_at = since + self._watch_grace
        posted = False
        try:
            while True:
                if self.failed.is_set():
                    raise CommError(f"{op} aborted: a peer rank failed")
                try:
                    item = self.inbox.get(timeout=self._tick)
                except _queue.Empty:
                    item = None
                if item is not None:
                    self._demux(item)
                if comm is not None:
                    comm._check_revoked()
                self.check_hang_notice(op, since)
                if item is not None:
                    hit = ready()
                    if hit is not _NOTHING:
                        return hit
                now = time.monotonic()
                if not posted and self.results is not None and now >= watch_at:
                    self.results.put(("wait", self.rank, {
                        "rank": self.rank,
                        "pid": os.getpid(),
                        "op": op,
                        "comm": str(comm.comm_id) if comm is not None else "?",
                        "tag": tag,
                        "op_id": None,
                        "pending": sorted(set(peers)),
                        "since": since,
                        "heartbeat": self._heartbeats.get(self.rank, 0),
                    }))
                    posted = True
                if item is not None:
                    continue
                if now >= deadline:
                    self.failed.set()
                    raise self._hang(comm, op, tag=tag, peers=peers)
        finally:
            if posted:
                try:
                    self.results.put(("endwait", self.rank))
                except Exception:
                    pass

    def _hang(self, comm, op: str, *, tag, peers) -> HangError:
        me = self.rank
        pid = os.getpid()
        pending = sorted(set(int(p) for p in peers))
        record = {
            "rank": me,
            "pid": pid,
            "op": op,
            "comm": str(comm.comm_id),
            "tag": tag,
            "op_id": None,
            "pending": pending,
            "blocked_s": round(self.timeout, 3),
            "heartbeat": self._heartbeats.get(me, 0),
        }
        message = (
            f"rank {me} (worker process pid {pid}): {op} on "
            f"{comm.comm_id} timed out after {self.timeout:g}s waiting "
            f"on rank(s) {', '.join(str(p) for p in pending) or '?'}"
            "\n  (process world: flat per-rank deadline backstop; the "
            "parent watchdog classified no deadlock or exited peer)"
            f"\n  rank {me}: {op} on {comm.comm_id}"
            + (f" tag {tag}" if tag is not None else "")
            + f" waiting on {pending} for {round(self.timeout, 3)}s "
            f"in pid {pid}"
        )
        return HangError(
            message, kind="timeout", cycle=(), dump={me: record}
        ).with_context(
            rank=me, pid=pid, op=op, peers=pending, tag=tag,
            comm=str(comm.comm_id),
        )

    # wait helpers used by MpComm ---------------------------------- #

    def wait_msg(self, key: tuple, *, comm, op: str, peers=()):
        def ready():
            return self._msgs.pop(key, _NOTHING)

        return self._wait(ready, comm=comm, op=op, peers=peers)

    def wait_multi(self, key: tuple, need: int, *, comm, op: str, peers=()):
        def ready():
            got = self._multi.get(key)
            if got is not None and len(got) >= need:
                return self._multi.pop(key)
            return _NOTHING

        return self._wait(ready, comm=comm, op=op, peers=peers)

    def match_p2p(self, channel: tuple, tag: int):
        """Pop the earliest buffered message on ``channel`` bearing
        ``tag`` (arrival order == send order: one queue per producer)."""
        entries = self._p2p.get(channel)
        if not entries:
            return _NOTHING
        for i, (_seq, mtag, body) in enumerate(entries):
            if mtag == tag:
                entries.pop(i)
                return body
        return _NOTHING

    def wait_p2p(self, channel: tuple, tag: int, *, comm, op: str, peers=()):
        def ready():
            return self.match_p2p(channel, tag)

        return self._wait(ready, comm=comm, op=op, tag=tag, peers=peers)

    # -------------------------------------------------------------- #
    # teardown
    # -------------------------------------------------------------- #

    def finish(self) -> None:
        """Drain outstanding segment acks, then close adopted handles.

        Runs after the SPMD body returned: every message this rank sent
        was matched, so each receiver will attach (and ack) as it drains
        its own queue — the wait below ends as soon as the slowest
        consumer of our broadcasts catches up.
        """
        registry = self.transport.segments
        deadline = time.monotonic() + self.timeout
        while registry.outstanding():
            try:
                item = self.inbox.get(timeout=self._tick)
            except _queue.Empty:
                item = None
            if item is not None:
                self._demux(item)
                continue
            if self.failed.is_set() or time.monotonic() >= deadline:
                registry.abandon()
                break
        for name in list(registry.adopted):
            registry.release(name)

    def abandon(self) -> None:
        self.transport.segments.abandon()


class MpComm(SimComm):
    """One process rank's communicator — API-compatible with SimComm.

    ``world`` is an :class:`MpWorld`.  All inherited operations that go
    through :meth:`_exchange`, :meth:`send`/:meth:`recv` or
    :meth:`_try_recv` (barrier, allgather, allreduce, gather, scatter,
    reduce, split, dup, isend, irecv, ibcast, step/backend scopes,
    envelope checksums, ledger charging) work unmodified on top of the
    overrides below.
    """

    __slots__ = ()

    # ------------------------------------------------------------------ #
    # the rendezvous primitive, re-based on queues
    # ------------------------------------------------------------------ #

    def _exchange(self, payload, op: str = "collective"):
        """Relay through local rank 0; completion is metered there."""
        op_id = self._opseq
        self._opseq += 1
        rt: MpWorld = self.world
        if self.rank == 0:
            contrib = {0: payload}
            if self.size > 1:
                wires = rt.wait_multi(
                    (self.comm_id, "c", op_id), self.size - 1,
                    comm=self, op=op,
                    peers=(m for m in self.members if m != self.global_rank),
                )
                for src, wire in wires.items():
                    contrib[src] = rt.transport.decode(wire)
                wire_all = rt.transport.encode(contrib, receivers=self.size - 1)
                for dst in range(1, self.size):
                    rt.post(
                        self.members[dst],
                        ("r", self.comm_id, op_id, wire_all),
                    )
            return contrib, True
        rt.post(
            self.members[0],
            ("c", self.comm_id, op_id, self.rank,
             rt.transport.encode(payload, receivers=1)),
        )
        wire = rt.wait_msg(
            (self.comm_id, "r", op_id), comm=self, op=op,
            peers=(self.members[0],),
        )
        return rt.transport.decode(wire), False

    # ------------------------------------------------------------------ #
    # direct collectives (data goes point-to-point, not via the relay)
    # ------------------------------------------------------------------ #

    def bcast(self, obj, root: int = 0):
        self._check_root(root)
        self._inject("bcast")
        op_id = self._opseq
        self._opseq += 1
        rt: MpWorld = self.world
        if self.rank == root:
            payload = self._wrap(obj)
            nbytes = payload_nbytes(payload)
            if self.size > 1:
                wire = rt.transport.encode(payload, receivers=self.size - 1)
                for dst in range(self.size):
                    if dst != root:
                        rt.post(
                            self.members[dst],
                            ("b", self.comm_id, op_id, wire),
                        )
            self._record("bcast", nbytes, nbytes * max(self.size - 1, 0))
            return obj
        wire = rt.wait_msg(
            (self.comm_id, "b", op_id), comm=self, op="bcast",
            peers=(self.members[root],),
        )
        return self._deliver(rt.transport.decode(wire), "bcast")

    def alltoall(self, sendlist) -> list:
        sendlist = list(sendlist)
        if len(sendlist) != self.size:
            raise CommError(
                f"alltoall needs {self.size} payloads, got {len(sendlist)}"
            )
        return self._direct_alltoall(sendlist, "alltoall")

    def alltoallv(self, sendlist, counts=None) -> list:
        sendlist = _normalize_alltoallv(sendlist, counts, self.size)
        return self._direct_alltoall(sendlist, "alltoallv")

    def _direct_alltoall(self, sendlist, op: str) -> list:
        self._inject(op)
        op_id = self._opseq
        self._opseq += 1
        rt: MpWorld = self.world
        wrapped = [self._wrap(x) for x in sendlist]
        sizes = [payload_nbytes(x) for x in wrapped]
        for dst in range(self.size):
            if dst != self.rank:
                rt.post(
                    self.members[dst],
                    ("a", self.comm_id, op_id, self.rank,
                     rt.transport.encode(wrapped[dst], receivers=1)),
                )
        # metering: local rank 0 gathers every rank's send-size row
        # (unmetered metadata) and records the event with the threaded
        # world's exact per-rank max/sum figures.
        if self.rank == 0:
            rows = {0: sizes}
            if self.size > 1:
                rows.update(rt.wait_multi(
                    (self.comm_id, "m", op_id), self.size - 1,
                    comm=self, op=op,
                    peers=(m for m in self.members if m != self.global_rank),
                ))
            per_rank = [sum(rows[r]) for r in range(self.size)]
            self._record(op, max(per_rank, default=0), sum(per_rank))
        else:
            rt.post(
                self.members[0],
                ("m", self.comm_id, op_id, self.rank, sizes),
            )
        out: list = [None] * self.size
        out[self.rank] = self._deliver(wrapped[self.rank], op)
        return self._collect_a2a(out, op_id, op)

    def _collect_a2a(self, out: list, op_id: int, op: str) -> list:
        """Receive the personalised payloads, in source-rank order."""
        rt: MpWorld = self.world
        key = (self.comm_id, "a", op_id)

        for src in range(self.size):
            if src == self.rank:
                continue

            def ready(src=src):
                got = rt._multi.get(key)
                if got is not None and src in got:
                    return got.pop(src)
                return _NOTHING

            wire = rt._wait(
                ready, comm=self, op=op, peers=(self.members[src],)
            )
            out[src] = self._deliver(rt.transport.decode(wire), op)
        got = rt._multi.get(key)
        if got is not None and not got:
            del rt._multi[key]
        return out

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._check_root(dest, "dest")
        self._inject("send")
        payload = self._wrap(obj)
        rt: MpWorld = self.world
        dest_g = self.members[dest]
        seq = rt.next_seq(self.comm_id, dest_g)
        rt.post(
            dest_g,
            ("p", self.comm_id, self.global_rank, seq, int(tag),
             rt.transport.encode(payload, receivers=1)),
        )
        self._record("send", payload_nbytes(payload), comm_size=2)

    def recv(self, source: int, tag: int = 0):
        self._check_root(source, "source")
        self._inject("recv")
        rt: MpWorld = self.world
        src_g = self.members[source]
        wire = rt.wait_p2p(
            (self.comm_id, src_g), int(tag), comm=self, op="recv",
            peers=(src_g,),
        )
        return self._deliver(rt.transport.decode(wire), "recv")

    def _try_recv(self, source: int, tag: int):
        self._check_root(source, "source")
        rt: MpWorld = self.world
        rt.drain()
        body = rt.match_p2p((self.comm_id, self.members[source]), int(tag))
        if body is _NOTHING:
            return False, None
        return True, self._deliver(rt.transport.decode(body), "recv")

    # ------------------------------------------------------------------ #
    # operation-entry hook
    # ------------------------------------------------------------------ #

    def _inject(self, op: str) -> None:
        """Drain queued control items first, so a revocation that is
        already sitting in the inbox is observed at op entry — same
        point the threaded world checks — before fault injection."""
        self.world.drain()
        super()._inject(op)


class _HealProxy:
    """Worker-side stand-in for the driver's :class:`HealContext`.

    Workers are forked, so their ``heal_ctx`` copy is dead weight; the
    meters a healing body reports (redistribution bytes, recovery
    latency) ship through the results queue to the parent, which applies
    them to the one real context."""

    __slots__ = ("world",)

    def __init__(self, world: MpWorld) -> None:
        self.world = world

    def add_bytes(self, epoch: int, nbytes: int) -> None:
        self.world.results.put(("heal", "bytes", int(epoch), int(nbytes)))

    def add_latency(self, epoch: int, seconds: float) -> None:
        self.world.results.put(("heal", "latency", int(epoch), float(seconds)))


class MpMembership:
    """Worker-side half of the process-world heal agreement.

    Presents the surface :class:`~repro.resilience.heal.HealingBody`
    uses from the threaded :class:`~repro.simmpi.membership.Membership`
    — ``register_body`` / ``current_decision`` / ``agree`` — but the
    agreement itself is parent-coordinated: votes travel up the results
    queue, the parent computes the :class:`HealDecision` once every
    survivor of the previous decision has voted (reusing
    :func:`~repro.simmpi.membership.compute_decision`), and the decision
    comes back as a ``("ctl", "decision", ...)`` item.  Determinism is
    preserved: the decision depends only on the fault plan and the
    checkpointed prefix, never on vote arrival order.
    """

    def __init__(self, world: MpWorld, nprocs: int, first_batch: int,
                 mode: str) -> None:
        self.world = world
        self.mode = mode
        self.decisions: dict[int, HealDecision] = {
            0: HealDecision(0, tuple(range(nprocs)), int(first_batch),
                            "initial", hosts={p: p for p in range(nprocs)})
        }
        self.latest = 0
        self.body = None

    def register_body(self, body) -> None:
        if self.body is None:
            self.body = body

    def current_decision(self) -> HealDecision:
        return self.decisions[self.latest]

    def receive(self, decision: HealDecision) -> None:
        """A decision arrived from the parent (demux path)."""
        self.decisions[decision.epoch] = decision
        if decision.epoch > self.latest:
            self.latest = decision.epoch
        # a decision implies its revocation (promoted spares never saw
        # the revoke ctl — they were parked outside the member set)
        if decision.epoch > self.world.revoke_epoch:
            self.world.revoke_epoch = decision.epoch

    def assignment(self, global_rank: int):
        """Position this parked rank was promoted into, if any."""
        decision = self.decisions[self.latest]
        position = decision.promoted.get(global_rank)
        if position is None:
            return None
        return position, decision

    def agree(self, global_rank: int) -> HealDecision:
        """Vote for the observed revoke epoch; adopt the parent's
        decision.  Re-votes when a further death advances the epoch
        mid-wait, mirroring the threaded agreement."""
        rt = self.world
        deadline = time.monotonic() + rt.timeout
        voted = -1
        while True:
            if rt.failed.is_set():
                raise CommError("heal agreement aborted: a peer rank failed")
            rt.check_hang_notice("agree")
            epoch = rt.revoke_epoch
            if self.latest >= epoch:
                decision = self.decisions[self.latest]
                rt.epoch_reset(decision.epoch)
                if decision.mode == "failed":
                    raise HealError(decision.reason).with_context(
                        rank=global_rank, epoch=decision.epoch,
                    )
                return decision
            if voted < epoch:
                rt.results.put(("vote", global_rank, epoch))
                voted = epoch
            try:
                item = rt.inbox.get(timeout=rt._tick)
            except _queue.Empty:
                item = None
            if item is not None:
                rt._demux(item)
                continue
            if time.monotonic() >= deadline:
                rt.failed.set()
                raise HealError(
                    f"heal agreement for epoch {epoch} timed out after "
                    f"{rt.timeout:g}s waiting for the parent decision"
                ).with_context(
                    rank=global_rank, epoch=epoch, pid=os.getpid(),
                )


#: `epoch_comm` builds this world's communicators as MpComm handles.
MpWorld.comm_class = MpComm
