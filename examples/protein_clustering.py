#!/usr/bin/env python
"""Protein-family clustering with HipMCL over memory-constrained SpGEMM.

Reproduces the paper's flagship application (Sec. V-C): Markov clustering
of a protein-similarity network where the squaring step does not fit in
memory and must run in batches, with per-batch pruning fused into the
pipeline.

A planted ground truth lets the script verify the clusters are right, and
the per-iteration batch counts show the memory-constrained machinery at
work — exactly the quantity Fig. 3 of the paper annotates per iteration.

Run:  python examples/protein_clustering.py
"""

import numpy as np

from repro.apps import markov_cluster
from repro.data import planted_partition
from repro.sparse.matrix import BYTES_PER_NONZERO


def main() -> None:
    # a protein-similarity-like network with 6 planted families
    n, families = 180, 6
    adjacency, truth = planted_partition(
        n, families, p_in=0.55, p_out=0.01, seed=7
    )
    print(f"network: {n} proteins, {adjacency.nnz} similarity edges, "
          f"{families} planted families")

    # restrict aggregate memory to a small multiple of the input so the
    # expensive early iterations must batch (HipMCL's regime on Cori)
    budget = 10 * adjacency.nnz * BYTES_PER_NONZERO
    print(f"aggregate memory budget: {budget / 1e6:.1f} MB")

    result = markov_cluster(
        adjacency,
        nprocs=4,
        layers=1,
        memory_budget=budget,
        inflation=2.0,
        keep_per_column=48,
        max_iterations=40,
    )

    print(f"\nconverged: {result.converged} after {len(result.iterations)} "
          f"iterations; found {result.n_clusters} clusters")
    print("\niter   batches   nnz(M)     chaos")
    for it in result.iterations:
        print(f"{it.iteration:>4}   {it.batches:>7}   {it.nnz:>7}   {it.chaos:.5f}")

    # verify against the planted truth (up to label permutation)
    agreement = 0
    for fam in range(families):
        members = np.flatnonzero(truth == fam)
        values, counts = np.unique(result.labels[members], return_counts=True)
        agreement += counts.max()
    print(f"\nagreement with planted families: {agreement / n:.1%}")


if __name__ == "__main__":
    main()
