#!/usr/bin/env python
"""Paper-scale strong-scaling study with the α–β machine model.

Projects BatchedSUMMA3D step times for the paper's Isolates matrix
(70M proteins, 301 Tflop squaring) from 16,384 to 262,144 Cori-KNL cores
— the Fig. 7 experiment — using the Table II/III cost model.  Shows the
paper's headline behaviours: the batch count falling as aggregate memory
grows, the superlinear A-Broadcast reduction that falls out of it, and
the communication-avoidance tradeoff across layer counts.

Run:  python examples/scaling_study.py
"""

from repro.data import load_dataset
from repro.model import (
    CORI_KNL,
    parallel_efficiency,
    predict_steps,
    strong_scaling_series,
)

STEPS = ("Symbolic", "A-Broadcast", "B-Broadcast", "Local-Multiply",
         "Merge-Layer", "AllToAll-Fiber", "Merge-Fiber")


def main() -> None:
    paper = load_dataset("isolates").paper
    stats = dict(
        nnz_a=int(paper.nnz_a),
        nnz_b=int(paper.nnz_a),
        nnz_c=int(paper.nnz_c),
        flops=int(paper.flops),
    )
    print("Isolates (Table V): "
          f"nnz(A) = {paper.nnz_a:.0e}, nnz(C) = {paper.nnz_c:.0e}, "
          f"flops = {paper.flops:.0e}")

    # ---- strong scaling at l = 16 (Fig. 7 configuration) ----------------
    cores = [16384, 65536, 262144]
    series = strong_scaling_series(
        CORI_KNL, core_counts=cores, layers=16, memory_fraction=0.5, **stats
    )
    print(f"\nstrong scaling on Cori-KNL, l = 16 "
          f"(memory budget = 50% of node memory):")
    header = f"{'cores':>8} {'procs':>6} {'b':>4} " + \
        " ".join(f"{s[:9]:>10}" for s in STEPS) + f" {'total':>9}"
    print(header)
    for pt in series:
        row = f"{pt.cores:>8} {pt.nprocs:>6} {pt.batches:>4} "
        row += " ".join(f"{pt.times.get(s):>10.2f}" for s in STEPS)
        row += f" {pt.total:>9.2f}"
        print(row)
    speedup = series[0].total / series[-1].total
    print(f"\n16x more cores -> {speedup:.1f}x faster "
          f"(paper reports 13x for Isolates)")
    eff = parallel_efficiency(series)
    print("parallel efficiency: " +
          ", ".join(f"{pt.cores//1024}K: {e:.2f}" for pt, e in zip(series, eff)))

    # ---- layer tradeoff at fixed cores (Fig. 4 shape) --------------------
    print("\nlayer tradeoff at 65,536 cores, b = 8:")
    print(f"{'l':>4} {'A-Bcast':>9} {'B-Bcast':>9} {'AllToAll':>9} "
          f"{'Merge-F':>9} {'total':>9}")
    for layers in (1, 4, 16, 64):
        t = predict_steps(
            CORI_KNL, nprocs=4096, layers=layers, batches=8, **stats
        )
        print(f"{layers:>4} {t.get('A-Broadcast'):>9.2f} "
              f"{t.get('B-Broadcast'):>9.2f} {t.get('AllToAll-Fiber'):>9.2f} "
              f"{t.get('Merge-Fiber'):>9.2f} {t.total():>9.2f}")
    print("\nbroadcasts shrink with l while fiber costs grow — the "
          "communication-avoidance tradeoff of Table VI.")


if __name__ == "__main__":
    main()
