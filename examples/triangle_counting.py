#!/usr/bin/env python
"""Triangle counting on a power-law social network (paper Sec. V-B).

Counts triangles of an R-MAT graph (a Friendster stand-in) with the
masked ``tril(A) @ triu(A)`` SpGEMM formulation, runs it on 2D and 3D
grids, and cross-checks against networkx.

Run:  python examples/triangle_counting.py
"""

import networkx as nx
import numpy as np

from repro.apps import clustering_coefficients, count_triangles
from repro.data import rmat
from repro.simmpi import CommTracker


def main() -> None:
    a = rmat(9, edge_factor=8, seed=11)   # 512 vertices, power-law degrees
    deg = a.col_nnz()
    print(f"R-MAT graph: {a.nrows} vertices, {a.nnz // 2} edges, "
          f"max degree {deg.max()}, median {int(np.median(deg))}")

    tracker = CommTracker()
    tri_2d = count_triangles(a, nprocs=4, tracker=tracker)
    tri_3d = count_triangles(a, nprocs=16, layers=4)
    print(f"\ntriangles (2x2 grid):   {tri_2d}")
    print(f"triangles (2x2x4 grid): {tri_3d}")
    assert tri_2d == tri_3d

    # independent oracle
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    rows, cols, _ = a.to_coo()
    g.add_edges_from((int(r), int(c)) for r, c in zip(rows, cols) if r < c)
    tri_nx = sum(nx.triangles(g).values()) // 3
    print(f"networkx check:         {tri_nx}")
    assert tri_2d == tri_nx

    cc = clustering_coefficients(a, nprocs=4)
    print(f"\nmean clustering coefficient: {cc.mean():.4f}")
    hubs = np.argsort(deg)[-5:][::-1]
    print("top-degree vertices:")
    for v in hubs:
        print(f"  vertex {v:>4}: degree {deg[v]:>4}, cc = {cc[v]:.4f}")

    print("\n" + tracker.format_table("communication of the 2D run"))


if __name__ == "__main__":
    main()
