#!/usr/bin/env python
"""All-pairs shortest paths on the distributed min-plus semiring.

The paper notes (Sec. II-A) its algorithms work over any semiring.  This
example exercises that: repeated squaring of the weight matrix under
(min, +) converges to all-pairs shortest path distances in ⌈log₂ n⌉
multiplications, each executed by BatchedSUMMA3D on a 3D grid, and the
result is verified against scipy's Dijkstra.

Run:  python examples/shortest_paths.py
"""

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.data import erdos_renyi
from repro.sparse import SparseMatrix, multiply
from repro.sparse.semiring import MIN_PLUS
from repro.summa import batched_summa3d


def main() -> None:
    n = 72
    graph = erdos_renyi(n, avg_degree=5, seed=33)
    # positive edge weights; keep the pattern, randomise the distances
    rng = np.random.default_rng(34)
    weights = SparseMatrix(
        n, n, graph.indptr, graph.rowidx,
        0.5 + rng.random(graph.nnz), validate=False,
    )
    print(f"graph: {n} vertices, {weights.nnz} weighted edges")

    # distance matrix: min-plus closure by repeated squaring
    dist = weights
    rounds = int(np.ceil(np.log2(n)))
    for r in range(rounds):
        result = batched_summa3d(
            dist, dist, nprocs=8, layers=2, batches=2, semiring=MIN_PLUS
        )
        # d_{k+1}(i, j) = min(d_k(i, j), min_t d_k(i, t) + d_k(t, j))
        stacked = _ewise_min(result.matrix, dist)
        if stacked.allclose(dist):
            print(f"converged after {r + 1} squarings")
            dist = stacked
            break
        dist = stacked
    print(f"distance matrix: {dist.nnz} reachable pairs")

    # oracle: scipy Dijkstra on the same weights
    import scipy.sparse as sp

    adj = sp.csr_matrix(
        (weights.values, (weights.rowidx, weights.col_indices())), shape=(n, n)
    )
    oracle = csgraph.dijkstra(adj, directed=True)
    ours = np.full((n, n), np.inf)
    rows, cols, vals = dist.to_coo()
    ours[rows, cols] = vals
    np.fill_diagonal(ours, 0.0)
    oracle_check = oracle.copy()
    mask = ~np.isinf(oracle_check)
    assert np.allclose(ours[mask], oracle_check[mask]), "distance mismatch"
    print("verified against scipy Dijkstra "
          f"({int(mask.sum())} finite pairs)")

    far = np.unravel_index(np.argmax(np.where(mask, oracle, -1)), oracle.shape)
    print(f"graph diameter (weighted): d({far[0]}, {far[1]}) = "
          f"{oracle[far]:.3f}")


def _ewise_min(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Elementwise min over the union pattern (min-plus 'add')."""
    from repro.sparse.merge import merge_grouped
    from repro.sparse.semiring import MIN_PLUS as MP

    return merge_grouped([a, b], semiring=MP)


if __name__ == "__main__":
    main()
