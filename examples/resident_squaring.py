#!/usr/bin/env python
"""Iterated squaring with persistent distributed matrices.

Iterative applications (HipMCL, Markov processes, transitive closure)
square a matrix many times.  Re-distributing the operand from a global
copy each iteration — what the simple API does — wastes the locality the
previous product already has.  :class:`repro.dist.DistContext` keeps
matrices resident on the grid: the product of one iteration feeds the
next with a single metered redistribution (alltoall), CombBLAS-style.

Run:  python examples/resident_squaring.py
"""

from repro.dist import DistContext
from repro.sparse import multiply, prune_threshold, random_sparse


def main() -> None:
    a = random_sparse(96, 96, nnz=700, seed=21)
    print(f"A: {a.nrows}x{a.ncols}, nnz = {a.nnz}")

    ctx = DistContext(nprocs=16, layers=4)
    print(f"grid: {ctx.grid!r}")

    ha = ctx.distribute(a, layout="A")
    hb = ctx.distribute(a, layout="B")
    print(f"resident memory after distribution: {ctx.memory_bytes():,} B")

    # three chained squarings: A^2, A^4, A^8 — each product is
    # redistributed once and reused as BOTH next operands
    handles = {"power": 1, "a": ha, "b": hb}
    current_a, current_b = ha, hb
    power = 1
    for step in range(3):
        hc, result = ctx.multiply(current_a, current_b, batches=2)
        power *= 2
        print(f"\nA^{power}: nnz = {hc.nnz}, layout = {hc.layout!r}, "
              f"batches = {result.batches}")
        print(f"  critical-path time: {result.step_times.total():.4f} s")
        # promote the product to the next iteration's operands
        current_a = ctx.redistribute(hc, "A")
        current_b = ctx.redistribute(hc, "B")

    # verify against the local computation
    expected = a
    for _ in range(3):
        expected = multiply(expected, expected)
    assert current_a.to_global().allclose(expected)
    print(f"\nverified: resident A^8 matches local computation "
          f"(nnz = {expected.nnz})")

    print("\ncommunication ledger (note the Redistribute step — the only "
          "price of residency):")
    print(ctx.tracker.format_table())


if __name__ == "__main__":
    main()
