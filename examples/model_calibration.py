#!/usr/bin/env python
"""Calibrating the α–β machine model from measurements.

The Cori presets shipped with the library explain the paper's machine;
for any *other* cluster, the same model needs fitted constants.  This
example shows the workflow end to end:

1. "measure" step breakdowns at a few (p, l, b) configurations — here
   generated from a pretend machine so the recovery can be verified;
2. fit (alpha, beta, sparse_rate) with least squares;
3. extrapolate to configurations never measured and check the error.

Run:  python examples/model_calibration.py
"""

from repro.model import CORI_KNL, predict_steps
from repro.model.calibrate import Observation, fit_machine, relative_error
from repro.model.complexity import step_times_closed_form

STATS = dict(nnz_a=5 * 10**8, nnz_b=5 * 10**8, flops=2 * 10**11)


def main() -> None:
    # a pretend cluster: slower network, faster cores than Cori-KNL
    truth = CORI_KNL.with_rate_scale(1.8, name="secret-cluster")
    truth = type(truth)(
        name="secret-cluster",
        alpha=truth.alpha * 2.5,
        beta=truth.beta * 1.7,
        sparse_rate=truth.sparse_rate,
        symbolic_rate=truth.symbolic_rate,
        cores_per_node=truth.cores_per_node,
        threads_per_core=truth.threads_per_core,
        mem_per_node=truth.mem_per_node,
        threads_per_process=truth.threads_per_process,
    )
    print(f"ground truth: alpha={truth.alpha:.2e}, beta={truth.beta:.2e}, "
          f"rate={truth.sparse_rate:.2e}")

    # --- 1. measurements at four small configurations --------------------
    train_configs = [(64, 1, 1), (256, 4, 2), (1024, 16, 4), (256, 16, 1)]
    observations = []
    for p, l, b in train_configs:
        times = step_times_closed_form(
            truth, nprocs=p, layers=l, batches=b, merge_kernel="hash", **STATS
        )
        observations.append(Observation(
            nprocs=p, layers=l, batches=b,
            step_seconds={k: v for k, v in times.items() if k != "Symbolic"},
            **STATS,
        ))
    print(f"\nmeasured {len(observations)} configurations: {train_configs}")

    # --- 2. fit ----------------------------------------------------------
    fitted = fit_machine(observations, name="fitted-cluster")
    print(f"\nfitted:       alpha={fitted.alpha:.2e}, beta={fitted.beta:.2e}, "
          f"rate={fitted.sparse_rate:.2e}")
    print(f"training fit error: {relative_error(fitted, observations):.2%}")

    # --- 3. extrapolate to an unmeasured scale ----------------------------
    target = dict(nprocs=4096, layers=16, batches=8)
    predicted = predict_steps(fitted, nnz_c=STATS["flops"] // 4,
                              include_symbolic=False, **target, **STATS)
    actual = predict_steps(truth, nnz_c=STATS["flops"] // 4,
                           include_symbolic=False, **target, **STATS)
    print(f"\nextrapolation to p=4096, l=16, b=8 "
          f"(never measured):")
    print(f"{'step':<16} {'actual (s)':>12} {'predicted (s)':>14}")
    for step in sorted(actual.seconds):
        print(f"{step:<16} {actual.get(step):>12.4f} "
              f"{predicted.get(step):>14.4f}")
    err = abs(predicted.total() - actual.total()) / actual.total()
    print(f"\ntotal extrapolation error: {err:.2%}")


if __name__ == "__main__":
    main()
