#!/usr/bin/env python
"""Quickstart: multiply sparse matrices with BatchedSUMMA3D.

Walks through the library's core workflow:

1. build a sparse matrix,
2. multiply it on a simulated 3D process grid,
3. let the symbolic step pick the batch count for a memory budget,
4. inspect the per-step time breakdown and metered communication.

Run:  python examples/quickstart.py
"""

from repro import batched_summa3d, random_sparse, summa2d, summa3d, symbolic3d
from repro.simmpi import CommTracker
from repro.sparse.matrix import BYTES_PER_NONZERO


def main() -> None:
    # -- 1. a random sparse matrix whose square is much denser ------------
    n = 256
    a = random_sparse(n, n, nnz=8 * n, seed=42)
    print(f"A: {a.nrows}x{a.ncols} with {a.nnz} nonzeros")

    # -- 2. the three algorithm tiers ------------------------------------
    r2d = summa2d(a, a, nprocs=4)
    print(f"\nSUMMA2D   (2x2 grid):        nnz(C) = {r2d.matrix.nnz}")

    r3d = summa3d(a, a, nprocs=16, layers=4)
    print(f"SUMMA3D   (2x2x4 grid):      nnz(C) = {r3d.matrix.nnz}")
    assert r3d.matrix.allclose(r2d.matrix)

    # -- 3. memory-constrained multiplication ----------------------------
    # give the run only 6x the input size; the distributed symbolic step
    # (Alg. 3 of the paper) computes how many batches that requires
    budget = 6 * a.nnz * BYTES_PER_NONZERO
    sym = symbolic3d(a, a, nprocs=16, layers=4, memory_budget=budget)
    print(f"\nSymbolic step: budget {budget / 1e6:.1f} MB "
          f"-> b = {sym.batches} batches "
          f"(max per-process unmerged nnz = {sym.max_nnz_c})")

    tracker = CommTracker()
    rb = batched_summa3d(
        a, a, nprocs=16, layers=4, memory_budget=budget, tracker=tracker
    )
    assert rb.matrix.allclose(r2d.matrix)
    print(f"BatchedSUMMA3D ran {rb.batches} batches; "
          f"peak per-process memory {rb.max_local_bytes / 1e6:.2f} MB")

    # -- 4. what did it cost? ---------------------------------------------
    print("\n" + rb.step_times.format_table("measured step times (critical path)"))
    print("\n" + tracker.format_table())


if __name__ == "__main__":
    main()
