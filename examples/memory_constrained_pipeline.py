#!/usr/bin/env python
"""The full memory-constrained pipeline: symbolic plan, batched multiply,
per-batch consumption, spill to disk, and reload.

This is the paper's production scenario stitched end to end:

1. the symbolic step sizes the batch count for a budget (Alg. 3);
2. BatchedSUMMA3D computes batch by batch, each batch pruned in the
   distributed hook and *discarded* from memory;
3. batches stream to disk (the "saved to disk by the application" mode);
4. a downstream pass reloads them one at a time and aggregates a
   statistic — the full product never exists in memory at once.

Run:  python examples/memory_constrained_pipeline.py
"""

import os
import tempfile

import numpy as np

from repro.data import load_dataset
from repro.sparse import load_matrix, prune_threshold
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.summa import batched_summa3d, symbolic3d


def main() -> None:
    a, _ = load_dataset("isolates_small").operands(seed=0)
    print(f"A: {a.nrows}x{a.ncols}, nnz = {a.nnz}")

    budget = 7 * a.nnz * BYTES_PER_NONZERO
    print(f"aggregate budget: {budget / 1e6:.1f} MB "
          f"({budget / (4 * 1e6):.2f} MB per process)")

    # -- 1. plan -----------------------------------------------------------
    plan = symbolic3d(a, a, nprocs=4, memory_budget=budget)
    print(f"symbolic step: b = {plan.batches} batches required "
          f"(max unmerged nnz per process: {plan.max_nnz_c})")

    # -- 2+3. batched multiply, prune, spill, discard ------------------------
    def prune(batch, c0, c1, block):
        return prune_threshold(block, 0.05)

    with tempfile.TemporaryDirectory() as spill_dir:
        result = batched_summa3d(
            a, a,
            nprocs=4,
            memory_budget=budget,
            keep_output=False,          # nothing retained in memory
            postprocess=prune,
            spill_dir=spill_dir,
        )
        files = sorted(os.listdir(spill_dir))
        print(f"\nran {result.batches} batches; "
              f"peak per-process memory {result.max_local_bytes / 1e6:.2f} MB")
        print(f"spilled {len(files)} batch files: {files[:4]}"
              f"{' ...' if len(files) > 4 else ''}")

        # -- 4. stream the batches back, never holding more than one -------
        total_nnz = 0
        col_max = np.zeros(a.ncols)
        for name in files:
            batch = load_matrix(os.path.join(spill_dir, name))
            total_nnz += batch.nnz
            np.maximum.at(col_max, batch.col_indices(), batch.values)
        print(f"\nstreamed aggregate: nnz(C, pruned) = {total_nnz}, "
              f"max column entry = {col_max.max():.4f}")
        print("at no point did the full product exist in memory.")


if __name__ == "__main__":
    main()
