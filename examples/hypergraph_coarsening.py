#!/usr/bin/env python
"""Heavy-connectivity matching for multilevel hypergraph coarsening.

The paper's Sec. I motivates batching with Zoltan's coarsening step:
vertex-pair connectivity weights are ``A @ Aᵀ`` over the incidence
matrix, far too dense to materialise, so partitioners compute it in
batches and match greedily per batch.  This example runs one coarsening
level end to end: batched matching, then contraction of matched pairs
into a coarser hypergraph.

Run:  python examples/hypergraph_coarsening.py
"""

import numpy as np

from repro.apps import heavy_connectivity_matching
from repro.data import kmer_matrix
from repro.sparse import SparseMatrix
from repro.sparse.matrix import BYTES_PER_NONZERO


def contract(incidence: SparseMatrix, match: np.ndarray) -> SparseMatrix:
    """Contract matched vertex pairs into single coarse vertices."""
    n = incidence.nrows
    coarse_id = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_id[v] >= 0:
            continue
        coarse_id[v] = next_id
        partner = match[v]
        if partner >= 0:
            coarse_id[partner] = next_id
        next_id += 1
    rows, cols, vals = incidence.to_coo()
    coarse = SparseMatrix.from_coo(next_id, incidence.ncols,
                                   coarse_id[rows], cols, vals)
    # membership is binary: a coarse vertex is in a net or not
    coarse.values.fill(1.0)
    return coarse


def main() -> None:
    # hypergraph: 300 vertices, 900 nets, skewed net membership
    inc = kmer_matrix(300, 900, kmers_per_seq=10, zipf_exponent=1.0, seed=5)
    print(f"hypergraph: {inc.nrows} vertices, {inc.ncols} nets, "
          f"{inc.nnz} pins")

    budget = 12 * inc.nnz * BYTES_PER_NONZERO
    match = heavy_connectivity_matching(
        inc, nprocs=4, memory_budget=budget, min_weight=2.0
    )
    matched = int((match >= 0).sum())
    print(f"\nbatched matching under a {budget / 1e6:.1f} MB budget:")
    print(f"matched vertices: {matched} / {inc.nrows} "
          f"({matched / inc.nrows:.0%})")

    coarse = contract(inc, match)
    print(f"\nafter one coarsening level: {coarse.nrows} coarse vertices "
          f"({inc.nrows / coarse.nrows:.2f}x reduction), "
          f"{coarse.nnz} pins")

    # a second level on the coarser hypergraph
    match2 = heavy_connectivity_matching(coarse, nprocs=4, min_weight=2.0)
    coarse2 = contract(coarse, match2)
    print(f"after two levels: {coarse2.nrows} coarse vertices "
          f"({inc.nrows / coarse2.nrows:.2f}x total reduction)")


if __name__ == "__main__":
    main()
