#!/usr/bin/env python
"""A full graph-analytics pass over one social network.

The paper frames SpGEMM as the shared kernel behind a family of graph
analytics.  This example runs that family end to end on a single R-MAT
network — every stage is the *same* distributed BatchedSUMMA3D under a
different semiring or mask:

1. connected components        (OR_AND closure)
2. triangle count + clustering (masked plus_times)
3. common-neighbour similarity (plus_pair on the weighted graph)
4. community detection         (Markov clustering)

Run:  python examples/graph_analytics_suite.py
"""

import numpy as np

from repro.apps import (
    clustering_coefficients,
    connected_components,
    count_triangles,
    markov_cluster,
)
from repro.data import rmat
from repro.sparse import multiply
from repro.sparse.ops import hadamard
from repro.sparse.semiring import PLUS_PAIR


def main() -> None:
    g = rmat(8, edge_factor=6, seed=77)     # 256 vertices, power-law
    n = g.nrows
    print(f"network: {n} vertices, {g.nnz // 2} edges "
          f"(max degree {int(g.col_nnz().max())})")

    # 1 — connectivity
    labels = connected_components(g, nprocs=4)
    sizes = np.bincount(labels)
    print(f"\n[1] connected components: {sizes.size} "
          f"(giant component: {sizes.max()} vertices, "
          f"{int((sizes == 1).sum())} isolated)")

    # 2 — triangles
    triangles = count_triangles(g, nprocs=4)
    cc = clustering_coefficients(g, nprocs=4)
    print(f"[2] triangles: {triangles}; "
          f"mean clustering coefficient {cc[cc > 0].mean() if (cc > 0).any() else 0:.4f}")

    # 3 — common-neighbour counts via PLUS_PAIR (values ignored: each
    #     structural intersection contributes exactly 1)
    common = hadamard(multiply(g, g, semiring=PLUS_PAIR), g)
    rows, cols, vals = common.to_coo()
    off = rows != cols
    if off.any():
        top = int(np.argmax(vals[off]))
        u, v = int(rows[off][top]), int(cols[off][top])
        print(f"[3] strongest tie: vertices {u} ~ {v} share "
              f"{int(vals[off][top])} neighbours")

    # 4 — communities on the giant component's induced subgraph
    giant = int(np.argmax(sizes))
    members = np.flatnonzero(labels == giant)
    from repro.sparse.ops import submatrix

    # induce: select rows/cols of the giant component (contiguous after
    # permuting members to the front)
    perm = np.concatenate([members, np.setdiff1d(np.arange(n), members)])
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)
    from repro.sparse.ops import permute

    arranged = permute(g, inverse, inverse)
    induced = submatrix(arranged, 0, members.size, 0, members.size)
    result = markov_cluster(induced, nprocs=4, max_iterations=30,
                            keep_per_column=32)
    comm_sizes = np.bincount(result.labels)
    print(f"[4] communities in the giant component: {result.n_clusters} "
          f"(largest: {comm_sizes.max()}, converged: {result.converged})")


if __name__ == "__main__":
    main()
