#!/usr/bin/env python
"""BELLA-style sequence overlap detection via batched A·Aᵀ.

The paper's Sec. V-G workload: given a sequences × k-mers occurrence
matrix, ``A @ A.T`` counts shared k-mers between all sequence pairs
without quadratic pairwise comparison.  The product is consumed batch by
batch — each batch is thresholded and reduced to candidate pairs, so the
full (dense-ish) pair matrix never exists.

Run:  python examples/sequence_overlap.py
"""

from repro.apps import find_overlaps
from repro.data import kmer_matrix
from repro.simmpi import CommTracker
from repro.sparse.matrix import BYTES_PER_NONZERO
from repro.sparse.spgemm.symbolic import symbolic_flops, symbolic_nnz
from repro.sparse import transpose


def main() -> None:
    # a long-read dataset stand-in: 400 reads, 3000 k-mers, Zipf popularity
    reads, kmers = 400, 3000
    a = kmer_matrix(reads, kmers, kmers_per_seq=18, zipf_exponent=1.1, seed=3)
    at = transpose(a)
    print(f"occurrence matrix: {reads} reads x {kmers} k-mers, {a.nnz} entries")
    print(f"A*A^T: nnz = {symbolic_nnz(a, at)}, flops = {symbolic_flops(a, at)} "
          f"(expansion {symbolic_nnz(a, at) / a.nnz:.1f}x over the input)")

    # overlap candidates = pairs sharing >= 3 k-mers, computed in batches
    # under a tight memory budget
    budget = 15 * a.nnz * BYTES_PER_NONZERO
    tracker = CommTracker()
    result = find_overlaps(
        a,
        min_shared=3,
        nprocs=4,
        layers=1,
        memory_budget=budget,
        tracker=tracker,
    )
    print(f"\nbatches used: {result.batches} "
          f"(budget {budget / 1e6:.1f} MB aggregate)")
    print(f"candidate overlaps (>= {result.min_shared} shared k-mers): "
          f"{result.count}")

    print("\nstrongest 10 candidates:")
    order = result.pairs[:, 2].argsort()[::-1][:10]
    for i, j, shared in result.pairs[order]:
        print(f"  read {i:>4} ~ read {j:>4}: {shared} shared k-mers")

    print("\n" + tracker.format_table())


if __name__ == "__main__":
    main()
